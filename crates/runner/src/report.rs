//! Run telemetry: what the engine actually did, printable as a table
//! and exportable as JSON/CSV.
//!
//! The counters live in a [`uarch_obs::Registry`] — the oracles update
//! registry-backed atomic handles ([`Metrics`]) while they work, and
//! [`RunReport`] is a plain-struct *view* over a snapshot of that
//! registry, so existing call sites (`report.sims_run`, `absorb`,
//! `to_table`) keep working while the same numbers are streamable
//! through the metrics layer.

use std::time::Duration;

use uarch_obs::{Counter, Gauge, Histogram, Registry};
use uarch_sim::{EngineStats, PipelineStalls};

/// Bucket bounds for the per-simulation cycle-count histogram.
const SIM_CYCLES_BOUNDS: [u64; 6] = [1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000];

/// Registry-backed live counters for one oracle. This is what the
/// engine actually increments; [`Metrics::report`] snapshots it into a
/// [`RunReport`].
#[derive(Debug)]
pub(crate) struct Metrics {
    registry: Registry,
    pub queries: Counter,
    pub jobs_requested: Counter,
    pub jobs_deduped: Counter,
    pub cache_hits: Counter,
    pub disk_hits: Counter,
    pub sims_run: Counter,
    pub cycles_simulated: Counter,
    pub insts_simulated: Counter,
    pub threads: Gauge,
    pub expand_wall_us: Counter,
    pub sim_wall_us: Counter,
    /// Distribution of per-simulation cycle counts.
    pub sim_cycles: Histogram,
    /// One counter per [`PipelineStalls`] row, in row order.
    stall_counters: Vec<Counter>,
    /// Cycles the event scheduler actually ticked (`sim.event.ticks`).
    pub engine_ticks: Counter,
    /// Idle cycles jumped over without running the stage functions
    /// (`sim.skipped_cycles`; always 0 under the ticking engine).
    pub engine_skipped: Counter,
    /// Idle spans bulk-attributed in one next-event jump each
    /// (`sim.event.spans`).
    pub engine_spans: Counter,
}

impl Metrics {
    /// Fresh metrics in a fresh registry.
    pub fn new(threads: usize) -> Metrics {
        let registry = Registry::new();
        let stall_counters = PipelineStalls::default()
            .rows()
            .iter()
            .map(|(name, _)| registry.counter(&format!("sim.stall.{name}")))
            .collect();
        let m = Metrics {
            queries: registry.counter("runner.queries"),
            jobs_requested: registry.counter("runner.jobs_requested"),
            jobs_deduped: registry.counter("runner.jobs_deduped"),
            cache_hits: registry.counter("runner.cache_hits_mem"),
            disk_hits: registry.counter("runner.cache_hits_disk"),
            sims_run: registry.counter("runner.sims_run"),
            cycles_simulated: registry.counter("runner.cycles_simulated"),
            insts_simulated: registry.counter("runner.insts_simulated"),
            threads: registry.gauge("runner.threads"),
            expand_wall_us: registry.counter("runner.expand_wall_us"),
            sim_wall_us: registry.counter("runner.sim_wall_us"),
            sim_cycles: registry.histogram("runner.sim_cycles", &SIM_CYCLES_BOUNDS),
            stall_counters,
            engine_ticks: registry.counter("sim.event.ticks"),
            engine_skipped: registry.counter("sim.skipped_cycles"),
            engine_spans: registry.counter("sim.event.spans"),
            registry,
        };
        m.threads.set(threads as i64);
        m
    }

    /// The registry the counters live in (for full snapshots that
    /// include the histogram).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Add one simulation's stall counters.
    pub fn absorb_stalls(&self, stalls: &PipelineStalls) {
        for (counter, (_, v)) in self.stall_counters.iter().zip(stalls.rows()) {
            counter.add(v);
        }
    }

    /// Add one simulation's run-loop telemetry (ticked vs skipped).
    pub fn absorb_engine(&self, engine: &EngineStats) {
        self.engine_ticks.add(engine.ticked_cycles);
        self.engine_skipped.add(engine.skipped_cycles);
        self.engine_spans.add(engine.idle_spans);
    }

    /// Add `d` to a wall-time counter, in whole microseconds.
    pub fn add_wall(counter: &Counter, d: Duration) {
        counter.add(d.as_micros() as u64);
    }

    /// Snapshot the live counters into a plain [`RunReport`] view.
    pub fn report(&self) -> RunReport {
        let mut stall_values = [0u64; 10];
        for (slot, counter) in stall_values.iter_mut().zip(&self.stall_counters) {
            *slot = counter.get();
        }
        let snap = self.registry.snapshot();
        let quantile = |q: f64| {
            snap.quantile("runner.sim_cycles", q)
                .map(|v| v.round() as u64)
                .unwrap_or(0)
        };
        RunReport {
            queries: self.queries.get(),
            jobs_requested: self.jobs_requested.get(),
            jobs_deduped: self.jobs_deduped.get(),
            cache_hits: self.cache_hits.get(),
            disk_hits: self.disk_hits.get(),
            sims_run: self.sims_run.get(),
            cycles_simulated: self.cycles_simulated.get(),
            insts_simulated: self.insts_simulated.get(),
            threads: self.threads.get().max(0) as usize,
            expand_wall: Duration::from_micros(self.expand_wall_us.get()),
            sim_wall: Duration::from_micros(self.sim_wall_us.get()),
            sim_cycles_p50: quantile(0.50),
            sim_cycles_p95: quantile(0.95),
            sim_cycles_p99: quantile(0.99),
            stalls: PipelineStalls::from_row_values(stall_values),
            engine: EngineStats {
                ticked_cycles: self.engine_ticks.get(),
                skipped_cycles: self.engine_skipped.get(),
                idle_spans: self.engine_spans.get(),
            },
        }
    }

    /// Zero everything, keeping the thread gauge.
    pub fn reset(&self) {
        let threads = self.threads.get();
        self.registry.reset();
        self.threads.set(threads);
    }
}

/// Counters and phase timings for one oracle / batch run.
///
/// Every `cost(S)` request ends in exactly one of: answered from memory
/// or disk (`cache_hits`/`disk_hits`), collapsed onto an identical
/// in-flight or already-requested job (`jobs_deduped`), or simulated
/// (`sims_run`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// `cost`/`baseline` queries answered (including trivial `∅` ones).
    pub queries: u64,
    /// Simulation jobs requested before dedup/cache screening.
    pub jobs_requested: u64,
    /// Requests collapsed because an identical job was already requested
    /// in the same batch or answered earlier.
    pub jobs_deduped: u64,
    /// Requests answered by in-memory entries this process computed.
    pub cache_hits: u64,
    /// Requests answered by entries the on-disk cache layer contributed.
    pub disk_hits: u64,
    /// Cycle-level simulations actually executed.
    pub sims_run: u64,
    /// Total simulated cycles across `sims_run`.
    pub cycles_simulated: u64,
    /// Total dynamic instructions fed to the simulator.
    pub insts_simulated: u64,
    /// Worker threads available to parallel waves.
    pub threads: usize,
    /// Wall time spent expanding/deduplicating/screening queries.
    pub expand_wall: Duration,
    /// Wall time spent inside simulation waves (parallel or inline).
    pub sim_wall: Duration,
    /// Approximate median per-simulation cycle count, interpolated from
    /// the fixed-bucket `runner.sim_cycles` histogram (0 before any
    /// simulation).
    pub sim_cycles_p50: u64,
    /// Approximate 95th-percentile per-simulation cycle count.
    pub sim_cycles_p95: u64,
    /// Approximate 99th-percentile per-simulation cycle count.
    pub sim_cycles_p99: u64,
    /// Simulated-machine pipeline stalls, summed over every simulation
    /// this report covers (idealized runs included).
    pub stalls: PipelineStalls,
    /// Run-loop telemetry summed over every simulation: cycles actually
    /// ticked vs skipped by the discrete-event scheduler, and how many
    /// idle spans were bulk-attributed.
    pub engine: EngineStats,
}

impl RunReport {
    /// A zeroed report for `threads` workers.
    pub fn new(threads: usize) -> RunReport {
        RunReport {
            threads,
            ..RunReport::default()
        }
    }

    /// Fold another report's counters and timings into this one.
    pub fn absorb(&mut self, other: &RunReport) {
        self.queries += other.queries;
        self.jobs_requested += other.jobs_requested;
        self.jobs_deduped += other.jobs_deduped;
        self.cache_hits += other.cache_hits;
        self.disk_hits += other.disk_hits;
        self.sims_run += other.sims_run;
        self.cycles_simulated += other.cycles_simulated;
        self.insts_simulated += other.insts_simulated;
        self.threads = self.threads.max(other.threads);
        self.expand_wall += other.expand_wall;
        self.sim_wall += other.sim_wall;
        // Percentiles are not additive across batches; keep the
        // pessimistic (larger) tail estimate.
        self.sim_cycles_p50 = self.sim_cycles_p50.max(other.sim_cycles_p50);
        self.sim_cycles_p95 = self.sim_cycles_p95.max(other.sim_cycles_p95);
        self.sim_cycles_p99 = self.sim_cycles_p99.max(other.sim_cycles_p99);
        self.stalls.absorb(&other.stalls);
        self.engine.absorb(&other.engine);
    }

    /// Fraction of non-empty requests that skipped simulation, in
    /// `[0, 1]`; `None` before any requests. Disk-served answers are
    /// reused work, so they count toward reuse exactly like memory hits
    /// and dedups.
    pub fn reuse_rate(&self) -> Option<f64> {
        let reused = self.jobs_deduped + self.cache_hits + self.disk_hits;
        let answered = reused + self.sims_run;
        if answered == 0 {
            return None;
        }
        Some(reused as f64 / answered as f64)
    }

    /// Per-tier breakdown of [`RunReport::reuse_rate`]: the fractions of
    /// answered requests served by in-memory hits, disk hits, and dedup
    /// collapses respectively (each in `[0, 1]`; they sum to the merged
    /// reuse rate). `None` before any requests.
    pub fn reuse_split(&self) -> Option<(f64, f64, f64)> {
        let answered = self.jobs_deduped + self.cache_hits + self.disk_hits + self.sims_run;
        if answered == 0 {
            return None;
        }
        let frac = |n: u64| n as f64 / answered as f64;
        Some((
            frac(self.cache_hits),
            frac(self.disk_hits),
            frac(self.jobs_deduped),
        ))
    }

    /// Publish every counter into `registry` (adding to whatever is
    /// already there, so absorbing several reports accumulates).
    pub fn publish(&self, registry: &Registry) {
        registry.counter("runner.queries").add(self.queries);
        registry
            .counter("runner.jobs_requested")
            .add(self.jobs_requested);
        registry
            .counter("runner.jobs_deduped")
            .add(self.jobs_deduped);
        registry
            .counter("runner.cache_hits_mem")
            .add(self.cache_hits);
        registry
            .counter("runner.cache_hits_disk")
            .add(self.disk_hits);
        registry.counter("runner.sims_run").add(self.sims_run);
        registry
            .counter("runner.cycles_simulated")
            .add(self.cycles_simulated);
        registry
            .counter("runner.insts_simulated")
            .add(self.insts_simulated);
        registry.gauge("runner.threads").set(self.threads as i64);
        registry
            .counter("runner.expand_wall_us")
            .add(self.expand_wall.as_micros() as u64);
        registry
            .counter("runner.sim_wall_us")
            .add(self.sim_wall.as_micros() as u64);
        if self.sims_run > 0 {
            // Gauges, not counters: a later batch's estimate replaces
            // (does not sum with) the earlier one.
            registry
                .gauge("runner.sim_cycles_p50")
                .set(self.sim_cycles_p50 as i64);
            registry
                .gauge("runner.sim_cycles_p95")
                .set(self.sim_cycles_p95 as i64);
            registry
                .gauge("runner.sim_cycles_p99")
                .set(self.sim_cycles_p99 as i64);
        }
        for (name, v) in self.stalls.rows() {
            registry.counter(&format!("sim.stall.{name}")).add(v);
        }
        registry
            .counter("sim.event.ticks")
            .add(self.engine.ticked_cycles);
        registry
            .counter("sim.skipped_cycles")
            .add(self.engine.skipped_cycles);
        registry
            .counter("sim.event.spans")
            .add(self.engine.idle_spans);
    }

    /// The report as a standalone metrics registry (the snapshot/JSON/
    /// CSV substrate).
    pub fn to_registry(&self) -> Registry {
        let registry = Registry::new();
        self.publish(&registry);
        registry
    }

    /// Render as a JSON metrics snapshot.
    pub fn to_json(&self) -> String {
        self.to_registry().snapshot().to_json()
    }

    /// Render as a CSV metrics snapshot.
    pub fn to_csv(&self) -> String {
        self.to_registry().snapshot().to_csv()
    }

    /// Render as an aligned two-column table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let mut row = |k: &str, v: String| out.push_str(&format!("  {k:<24} {v:>14}\n"));
        row("queries", self.queries.to_string());
        row("jobs requested", self.jobs_requested.to_string());
        row("jobs deduped", self.jobs_deduped.to_string());
        row("cache hits (memory)", self.cache_hits.to_string());
        row("cache hits (disk)", self.disk_hits.to_string());
        row("simulations run", self.sims_run.to_string());
        row("cycles simulated", self.cycles_simulated.to_string());
        row("insts simulated", self.insts_simulated.to_string());
        row("threads", self.threads.to_string());
        row("expand wall", format!("{:.3?}", self.expand_wall));
        row("simulate wall", format!("{:.3?}", self.sim_wall));
        if self.sims_run > 0 && self.sim_cycles_p50 > 0 {
            row("sim cycles p50", format!("~{}", self.sim_cycles_p50));
            row("sim cycles p95", format!("~{}", self.sim_cycles_p95));
            row("sim cycles p99", format!("~{}", self.sim_cycles_p99));
        }
        if let (Some(r), Some((mem, disk, dedup))) = (self.reuse_rate(), self.reuse_split()) {
            row("reuse rate", format!("{:.1}%", 100.0 * r));
            row("  reuse from memory", format!("{:.1}%", 100.0 * mem));
            row("  reuse from disk", format!("{:.1}%", 100.0 * disk));
            row("  reuse from dedup", format!("{:.1}%", 100.0 * dedup));
        }
        if self.stalls.total() > 0 {
            out.push_str("  simulated-machine stalls by cause:\n");
            for (name, v) in self.stalls.rows() {
                if v > 0 {
                    out.push_str(&format!("    stall.{name:<20} {v:>14}\n"));
                }
            }
        }
        if self.engine.skipped_cycles > 0 {
            out.push_str(&format!(
                "  {:<24} {:>14}\n  {:<24} {:>14}\n",
                "cycles skipped", self.engine.skipped_cycles, "idle spans", self.engine.idle_spans
            ));
        }
        out
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_counters() {
        let mut a = RunReport::new(2);
        a.sims_run = 3;
        a.cache_hits = 1;
        a.stalls.issue_fu_busy = 2;
        let mut b = RunReport::new(4);
        b.sims_run = 2;
        b.jobs_deduped = 5;
        b.stalls.issue_fu_busy = 3;
        a.absorb(&b);
        assert_eq!(a.sims_run, 5);
        assert_eq!(a.jobs_deduped, 5);
        assert_eq!(a.threads, 4);
        assert_eq!(a.stalls.issue_fu_busy, 5);
        // (1 + 5) reused of the 11 answered requests.
        assert!((a.reuse_rate().unwrap() - 6.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn reuse_rate_counts_disk_hits_as_reuse() {
        // Regression for the disk-layer bug: two disk-served answers and
        // two fresh simulations is a 50% reuse rate, not 0%.
        let mut r = RunReport::new(1);
        r.disk_hits = 2;
        r.sims_run = 2;
        assert_eq!(r.reuse_rate(), Some(0.5));
        // All-disk runs are 100% reuse.
        let mut all_disk = RunReport::new(1);
        all_disk.disk_hits = 4;
        assert_eq!(all_disk.reuse_rate(), Some(1.0));
    }

    #[test]
    fn reuse_split_separates_tiers_and_sums_to_rate() {
        let mut r = RunReport::new(1);
        r.cache_hits = 3;
        r.disk_hits = 2;
        r.jobs_deduped = 1;
        r.sims_run = 4;
        let (mem, disk, dedup) = r.reuse_split().unwrap();
        assert!((mem - 0.3).abs() < 1e-9);
        assert!((disk - 0.2).abs() < 1e-9);
        assert!((dedup - 0.1).abs() < 1e-9);
        assert!((mem + disk + dedup - r.reuse_rate().unwrap()).abs() < 1e-9);
        assert_eq!(RunReport::new(1).reuse_split(), None);
        // The table carries the split rows, not just the merged rate.
        let t = r.to_table();
        assert!(t.contains("reuse from memory"));
        assert!(t.contains("reuse from disk"));
        assert!(t.contains("reuse from dedup"));
        assert!(t.contains("30.0%") && t.contains("20.0%") && t.contains("10.0%"));
    }

    #[test]
    fn table_lists_every_counter() {
        let r = RunReport::new(8);
        let t = r.to_table();
        for key in [
            "queries",
            "jobs requested",
            "jobs deduped",
            "cache hits (memory)",
            "cache hits (disk)",
            "simulations run",
            "threads",
        ] {
            assert!(t.contains(key), "missing {key} in:\n{t}");
        }
        assert!(r.reuse_rate().is_none());
        // Stall section appears only when stalls were recorded.
        assert!(!t.contains("stall."));
        let mut s = RunReport::new(1);
        s.stalls.dispatch_window_full = 9;
        assert!(s.to_table().contains("stall.dispatch_window_full"));
    }

    #[test]
    fn metrics_snapshot_roundtrips_to_report() {
        let m = Metrics::new(3);
        m.queries.add(2);
        m.sims_run.inc();
        m.cycles_simulated.add(1234);
        m.sim_cycles.record(1234);
        m.absorb_stalls(&PipelineStalls {
            load_mem_fill: 7,
            ..PipelineStalls::default()
        });
        let r = m.report();
        assert_eq!(r.queries, 2);
        assert_eq!(r.sims_run, 1);
        assert_eq!(r.cycles_simulated, 1234);
        assert_eq!(r.threads, 3);
        assert_eq!(r.stalls.load_mem_fill, 7);
        m.reset();
        let r2 = m.report();
        assert_eq!(r2.sims_run, 0);
        assert_eq!(r2.threads, 3, "reset keeps the thread gauge");
    }

    #[test]
    fn report_carries_sim_cycle_percentiles() {
        let m = Metrics::new(1);
        // 100 samples spread across the first bucket (bound 1_000): the
        // estimates interpolate within it and order correctly.
        for _ in 0..100 {
            m.sims_run.inc();
            m.sim_cycles.record(500);
        }
        let r = m.report();
        assert!(r.sim_cycles_p50 > 0);
        assert!(r.sim_cycles_p50 <= r.sim_cycles_p95);
        assert!(r.sim_cycles_p95 <= r.sim_cycles_p99);
        assert!(r.sim_cycles_p99 <= 1_000, "all samples in first bucket");
        let t = r.to_table();
        assert!(t.contains("sim cycles p50"), "table renders p50:\n{t}");
        assert!(t.contains("sim cycles p99"));
        // Publishing exposes the estimates as gauges.
        let reg = r.to_registry();
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("runner.sim_cycles_p50"), r.sim_cycles_p50 as i64);
        assert_eq!(snap.gauge("runner.sim_cycles_p99"), r.sim_cycles_p99 as i64);
        // absorb keeps the larger tail estimate.
        let mut a = r.clone();
        let mut b = RunReport::new(1);
        b.sim_cycles_p99 = 5_000_000;
        a.absorb(&b);
        assert_eq!(a.sim_cycles_p99, 5_000_000);
        // A report with no simulations renders no percentile rows and
        // publishes no gauges.
        let empty = RunReport::new(1);
        assert!(!empty.to_table().contains("sim cycles p50"));
        assert_eq!(
            empty
                .to_registry()
                .snapshot()
                .gauge("runner.sim_cycles_p50"),
            0
        );
    }

    #[test]
    fn report_exports_parse_and_carry_values() {
        let mut r = RunReport::new(2);
        r.sims_run = 4;
        r.stalls.fetch_bmisp_recovery = 11;
        let doc = uarch_obs::json::parse(&r.to_json()).expect("valid JSON");
        let counters = doc.get("counters").expect("counters section");
        assert_eq!(
            counters.get("runner.sims_run").and_then(|v| v.as_num()),
            Some(4.0)
        );
        assert_eq!(
            counters
                .get("sim.stall.fetch_bmisp_recovery")
                .and_then(|v| v.as_num()),
            Some(11.0)
        );
        let csv = r.to_csv();
        assert!(csv.starts_with("name,type,value\n"));
        assert!(csv.contains("runner.sims_run,counter,4"));
    }
}
