//! Run telemetry: what the engine actually did, printable as a table.

use std::time::Duration;

/// Counters and phase timings for one oracle / batch run.
///
/// Every `cost(S)` request ends in exactly one of: answered from memory or
/// disk (`cache_hits`/`disk_hits`), collapsed onto an identical in-flight
/// or already-requested job (`jobs_deduped`), or simulated (`sims_run`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// `cost`/`baseline` queries answered (including trivial `∅` ones).
    pub queries: u64,
    /// Simulation jobs requested before dedup/cache screening.
    pub jobs_requested: u64,
    /// Requests collapsed because an identical job was already requested
    /// in the same batch or answered earlier.
    pub jobs_deduped: u64,
    /// Requests answered by the in-memory content-addressed cache.
    pub cache_hits: u64,
    /// Entries the on-disk cache layer contributed.
    pub disk_hits: u64,
    /// Cycle-level simulations actually executed.
    pub sims_run: u64,
    /// Total simulated cycles across `sims_run`.
    pub cycles_simulated: u64,
    /// Total dynamic instructions fed to the simulator.
    pub insts_simulated: u64,
    /// Worker threads available to parallel waves.
    pub threads: usize,
    /// Wall time spent expanding/deduplicating/screening queries.
    pub expand_wall: Duration,
    /// Wall time spent inside simulation waves (parallel or inline).
    pub sim_wall: Duration,
}

impl RunReport {
    /// A zeroed report for `threads` workers.
    pub fn new(threads: usize) -> RunReport {
        RunReport {
            threads,
            ..RunReport::default()
        }
    }

    /// Fold another report's counters and timings into this one.
    pub fn absorb(&mut self, other: &RunReport) {
        self.queries += other.queries;
        self.jobs_requested += other.jobs_requested;
        self.jobs_deduped += other.jobs_deduped;
        self.cache_hits += other.cache_hits;
        self.disk_hits += other.disk_hits;
        self.sims_run += other.sims_run;
        self.cycles_simulated += other.cycles_simulated;
        self.insts_simulated += other.insts_simulated;
        self.threads = self.threads.max(other.threads);
        self.expand_wall += other.expand_wall;
        self.sim_wall += other.sim_wall;
    }

    /// Fraction of non-empty requests that skipped simulation, in
    /// `[0, 1]`; `None` before any requests.
    pub fn reuse_rate(&self) -> Option<f64> {
        let answered = self.jobs_deduped + self.cache_hits + self.sims_run;
        if answered == 0 {
            return None;
        }
        Some((self.jobs_deduped + self.cache_hits) as f64 / answered as f64)
    }

    /// Render as an aligned two-column table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let mut row = |k: &str, v: String| out.push_str(&format!("  {k:<24} {v:>14}\n"));
        row("queries", self.queries.to_string());
        row("jobs requested", self.jobs_requested.to_string());
        row("jobs deduped", self.jobs_deduped.to_string());
        row("cache hits (memory)", self.cache_hits.to_string());
        row("cache hits (disk)", self.disk_hits.to_string());
        row("simulations run", self.sims_run.to_string());
        row("cycles simulated", self.cycles_simulated.to_string());
        row("insts simulated", self.insts_simulated.to_string());
        row("threads", self.threads.to_string());
        row("expand wall", format!("{:.3?}", self.expand_wall));
        row("simulate wall", format!("{:.3?}", self.sim_wall));
        if let Some(r) = self.reuse_rate() {
            row("reuse rate", format!("{:.1}%", 100.0 * r));
        }
        out
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_counters() {
        let mut a = RunReport::new(2);
        a.sims_run = 3;
        a.cache_hits = 1;
        let mut b = RunReport::new(4);
        b.sims_run = 2;
        b.jobs_deduped = 5;
        a.absorb(&b);
        assert_eq!(a.sims_run, 5);
        assert_eq!(a.jobs_deduped, 5);
        assert_eq!(a.threads, 4);
        // (1 + 5) reused of the 11 answered requests.
        assert!((a.reuse_rate().unwrap() - 6.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn table_lists_every_counter() {
        let r = RunReport::new(8);
        let t = r.to_table();
        for key in [
            "queries",
            "jobs requested",
            "jobs deduped",
            "cache hits (memory)",
            "cache hits (disk)",
            "simulations run",
            "threads",
        ] {
            assert!(t.contains(key), "missing {key} in:\n{t}");
        }
        assert!(r.reuse_rate().is_none());
    }
}
