//! `CostOracle`-compatible front-ends over the job engine.
//!
//! [`ParallelMultiSimOracle`] is a drop-in replacement for the serial
//! [`MultiSimOracle`](icost::MultiSimOracle): identical `cost(S)` values
//! (both run the same deterministic simulator), but queries hinted through
//! [`CostOracle::prefetch`] are expanded into one deduplicated wave of
//! jobs executed across worker threads, and every result lands in a
//! shared content-addressed [`SimCache`].
//!
//! [`CachedOracle`] adds the same content-addressed caching to *any*
//! inner oracle (e.g. a `GraphOracle`), so repeated breakdowns over equal
//! inputs skip even graph re-evaluation.

use std::time::Instant;

use icost::CostOracle;
use uarch_sim::{Idealization, Simulator};
use uarch_trace::{EventSet, MachineConfig, Trace};

use crate::cache::SimCache;
use crate::fingerprint::{context_id, ContextId};
use crate::pool::{default_threads, parallel_map};
use crate::report::RunReport;

/// A parallel, memoized multi-simulation oracle over one
/// `(trace, config, warm sets)` context.
#[derive(Debug)]
pub struct ParallelMultiSimOracle<'a> {
    config: &'a MachineConfig,
    trace: &'a Trace,
    warm_data: &'a [u64],
    warm_code: &'a [u64],
    ctx: ContextId,
    threads: usize,
    cache: SimCache,
    report: RunReport,
}

impl<'a> ParallelMultiSimOracle<'a> {
    /// An oracle over a cold machine (no cache/TLB warmup), with its own
    /// private in-memory cache and one worker per core.
    pub fn new(config: &'a MachineConfig, trace: &'a Trace) -> ParallelMultiSimOracle<'a> {
        ParallelMultiSimOracle::warmed(config, trace, &[], &[])
    }

    /// An oracle whose every simulation pre-touches `warm_data` /
    /// `warm_code` (steady-state measurement, as `run_warmed`).
    pub fn warmed(
        config: &'a MachineConfig,
        trace: &'a Trace,
        warm_data: &'a [u64],
        warm_code: &'a [u64],
    ) -> ParallelMultiSimOracle<'a> {
        let threads = default_threads();
        ParallelMultiSimOracle {
            config,
            trace,
            warm_data,
            warm_code,
            ctx: context_id(config, trace, warm_data, warm_code),
            threads,
            cache: SimCache::new(),
            report: RunReport::new(threads),
        }
    }

    /// Cap (or raise) the worker count for parallel waves.
    pub fn with_threads(mut self, threads: usize) -> ParallelMultiSimOracle<'a> {
        self.threads = threads.max(1);
        self.report.threads = self.threads;
        self
    }

    /// Share `cache` instead of the private one: oracles over equal
    /// contexts then reuse each other's simulations, and a disk-backed
    /// cache persists them across processes.
    pub fn with_cache(mut self, cache: SimCache) -> ParallelMultiSimOracle<'a> {
        self.cache = cache;
        self
    }

    /// This oracle's simulation-context fingerprint.
    pub fn context(&self) -> ContextId {
        self.ctx
    }

    /// Telemetry accumulated so far.
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// Take the telemetry, resetting the counters.
    pub fn take_report(&mut self) -> RunReport {
        std::mem::replace(&mut self.report, RunReport::new(self.threads))
    }

    fn simulate(&self, set: EventSet) -> u64 {
        Simulator::new(self.config).cycles_warmed(
            self.trace,
            Idealization::from(set),
            self.warm_data,
            self.warm_code,
        )
    }

    /// Cycles under idealization of `set`, via cache or simulation.
    fn cycles(&mut self, set: EventSet) -> u64 {
        self.report.jobs_requested += 1;
        let (hit, from_disk) = self.cache.get(self.ctx, set);
        self.report.disk_hits += from_disk as u64;
        if let Some(cycles) = hit {
            self.report.cache_hits += 1;
            return cycles;
        }
        let start = Instant::now();
        let cycles = self.simulate(set);
        self.report.sim_wall += start.elapsed();
        self.report.sims_run += 1;
        self.report.cycles_simulated += cycles;
        self.report.insts_simulated += self.trace.len() as u64;
        self.cache.insert(self.ctx, set, cycles);
        cycles
    }
}

impl CostOracle for ParallelMultiSimOracle<'_> {
    fn cost(&mut self, set: EventSet) -> i64 {
        self.report.queries += 1;
        if set.is_empty() {
            return 0;
        }
        let base = self.cycles(EventSet::EMPTY) as i64;
        base - self.cycles(set) as i64
    }

    fn baseline(&mut self) -> u64 {
        self.report.queries += 1;
        self.cycles(EventSet::EMPTY)
    }

    /// Expand `sets` into the minimal set of uncached distinct jobs
    /// (always including the `∅` baseline) and execute them as one
    /// parallel wave with deterministic result placement.
    fn prefetch(&mut self, sets: &[EventSet]) {
        let expand_start = Instant::now();
        let mut jobs: Vec<EventSet> = Vec::with_capacity(sets.len() + 1);
        for &set in std::iter::once(&EventSet::EMPTY).chain(sets) {
            self.report.jobs_requested += 1;
            if jobs.contains(&set) {
                self.report.jobs_deduped += 1;
                continue;
            }
            let (hit, from_disk) = self.cache.get(self.ctx, set);
            self.report.disk_hits += from_disk as u64;
            if hit.is_some() {
                self.report.cache_hits += 1;
            } else {
                jobs.push(set);
            }
        }
        self.report.expand_wall += expand_start.elapsed();
        if jobs.is_empty() {
            return;
        }

        let sim_start = Instant::now();
        let results = parallel_map(&jobs, self.threads, |&set| self.simulate(set));
        self.report.sim_wall += sim_start.elapsed();
        for (&set, &cycles) in jobs.iter().zip(&results) {
            self.report.sims_run += 1;
            self.report.cycles_simulated += cycles;
            self.report.insts_simulated += self.trace.len() as u64;
            self.cache.insert(self.ctx, set, cycles);
        }
    }
}

/// Content-addressed caching around any inner [`CostOracle`].
///
/// The wrapper stores `t(S) = baseline − cost(S)` under the caller's
/// [`ContextId`], so equal analyses in later oracles (or later processes,
/// with a disk-backed [`SimCache`]) are answered without touching the
/// inner oracle at all. `cost(S)` values are bit-identical to the inner
/// oracle's by construction.
#[derive(Debug)]
pub struct CachedOracle<O> {
    inner: O,
    ctx: ContextId,
    cache: SimCache,
    report: RunReport,
}

impl<O: CostOracle> CachedOracle<O> {
    /// Wrap `inner`, keying cache entries by `ctx`.
    ///
    /// `ctx` must identify everything the inner oracle's answers depend
    /// on — build it with [`context_id`](crate::context_id) from the
    /// trace/config/warm sets the inner oracle observes.
    pub fn new(inner: O, ctx: ContextId, cache: SimCache) -> CachedOracle<O> {
        CachedOracle {
            inner,
            ctx,
            cache,
            report: RunReport::new(1),
        }
    }

    /// Telemetry accumulated so far.
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// The wrapped oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: CostOracle> CostOracle for CachedOracle<O> {
    fn cost(&mut self, set: EventSet) -> i64 {
        self.report.queries += 1;
        if set.is_empty() {
            return 0;
        }
        self.report.jobs_requested += 1;
        let base = self.baseline_cycles() as i64;
        let (hit, from_disk) = self.cache.get(self.ctx, set);
        self.report.disk_hits += from_disk as u64;
        if let Some(cycles) = hit {
            self.report.cache_hits += 1;
            return base - cycles as i64;
        }
        let cost = self.inner.cost(set);
        self.report.sims_run += 1;
        self.cache.insert(self.ctx, set, (base - cost) as u64);
        cost
    }

    fn baseline(&mut self) -> u64 {
        self.report.queries += 1;
        self.baseline_cycles()
    }

    fn prefetch(&mut self, sets: &[EventSet]) {
        // Forward the hint: a batched inner oracle still parallelizes the
        // residue the cache cannot answer.
        let uncached: Vec<EventSet> = sets
            .iter()
            .copied()
            .filter(|&s| self.cache.get(self.ctx, s).0.is_none())
            .collect();
        if !uncached.is_empty() {
            self.inner.prefetch(&uncached);
        }
    }
}

impl<O: CostOracle> CachedOracle<O> {
    fn baseline_cycles(&mut self) -> u64 {
        let (hit, from_disk) = self.cache.get(self.ctx, EventSet::EMPTY);
        self.report.disk_hits += from_disk as u64;
        if let Some(cycles) = hit {
            self.report.cache_hits += 1;
            return cycles;
        }
        let base = self.inner.baseline();
        self.cache.insert(self.ctx, EventSet::EMPTY, base);
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icost::MultiSimOracle;
    use uarch_trace::{EventClass, Reg, TraceBuilder};

    fn kernel(n: u64) -> Trace {
        let mut b = TraceBuilder::new();
        for k in 0..n {
            b.load(Reg::int(1), 0x10_0000 + k * 4096);
            b.alu(Reg::int(2), &[Reg::int(1)]);
        }
        b.finish()
    }

    #[test]
    fn matches_serial_multisim_exactly() {
        let cfg = MachineConfig::table6();
        let t = kernel(30);
        let mut serial = MultiSimOracle::new(&cfg, &t);
        let mut par = ParallelMultiSimOracle::new(&cfg, &t).with_threads(4);
        let u = EventSet::from([EventClass::Dmiss, EventClass::Win, EventClass::Bmisp]);
        let sets: Vec<EventSet> = u.subsets().collect();
        par.prefetch(&sets);
        for s in sets {
            assert_eq!(par.cost(s), serial.cost(s), "cost({s}) diverged");
        }
        assert_eq!(par.baseline(), serial.baseline());
    }

    #[test]
    fn prefetch_dedupes_and_caches() {
        let cfg = MachineConfig::table6();
        let t = kernel(10);
        let mut par = ParallelMultiSimOracle::new(&cfg, &t).with_threads(2);
        let a = EventSet::single(EventClass::Dmiss);
        let b = EventSet::single(EventClass::Dl1);
        par.prefetch(&[a, b, a, b, a]);
        let r = par.report();
        assert_eq!(r.sims_run, 3, "∅, a, b"); // baseline + two distinct
        assert_eq!(r.jobs_deduped, 3, "three duplicate requests collapsed");
        // A second identical wave is pure cache hits.
        par.prefetch(&[a, b]);
        let r = par.report();
        assert_eq!(r.sims_run, 3);
        assert_eq!(r.cache_hits, 3);
        // And cost() answers come from cache, not fresh sims.
        let _ = par.cost(a);
        assert_eq!(par.report().sims_run, 3);
    }

    #[test]
    fn shared_cache_spans_oracle_instances() {
        let cfg = MachineConfig::table6();
        let t = kernel(10);
        let cache = SimCache::new();
        let s = EventSet::single(EventClass::Dmiss);
        let first = {
            let mut o = ParallelMultiSimOracle::new(&cfg, &t).with_cache(cache.clone());
            o.cost(s)
        };
        let mut o2 = ParallelMultiSimOracle::new(&cfg, &t).with_cache(cache);
        assert_eq!(o2.cost(s), first);
        assert_eq!(o2.report().sims_run, 0, "second oracle never simulates");
        assert_eq!(o2.report().cache_hits, 2, "baseline and set both hit");
    }

    #[test]
    fn cached_oracle_is_transparent() {
        let cfg = MachineConfig::table6();
        let t = kernel(20);
        let ctx = context_id(&cfg, &t, &[], &[]);
        let mut plain = MultiSimOracle::new(&cfg, &t);
        let mut cached = CachedOracle::new(MultiSimOracle::new(&cfg, &t), ctx, SimCache::new());
        for c in EventClass::ALL {
            let s = EventSet::single(c);
            assert_eq!(cached.cost(s), plain.cost(s));
        }
        assert_eq!(cached.baseline(), plain.baseline());
        // Re-query through a fresh wrapper sharing nothing: must recompute.
        // Through a wrapper sharing the cache: must not.
        let cache = SimCache::new();
        let mut a = CachedOracle::new(MultiSimOracle::new(&cfg, &t), ctx, cache.clone());
        let s = EventSet::single(EventClass::Dmiss);
        let v = a.cost(s);
        let mut b = CachedOracle::new(MultiSimOracle::new(&cfg, &t), ctx, cache);
        assert_eq!(b.cost(s), v);
        assert_eq!(b.report().sims_run, 0);
        assert!(b.report().cache_hits >= 1);
    }
}
