//! `CostOracle`-compatible front-ends over the job engine.
//!
//! [`ParallelMultiSimOracle`] is a drop-in replacement for the serial
//! [`MultiSimOracle`](icost::MultiSimOracle): identical `cost(S)` values
//! (both run the same deterministic simulator), but queries hinted through
//! [`CostOracle::prefetch`] are expanded into one deduplicated wave of
//! jobs executed across worker threads, and every result lands in a
//! shared content-addressed [`SimCache`].
//!
//! Telemetry lives in a registry-backed [`Metrics`] block — atomic
//! counters the parallel waves update directly — and [`report`] snapshots
//! it into the familiar [`RunReport`] view. Each simulation also returns
//! its [`PipelineStalls`], which accumulate per-cause into
//! `sim.stall.*` counters so a breakdown run can print what the simulated
//! machine was doing alongside the icost numbers.
//!
//! [`CachedOracle`] adds the same content-addressed caching to *any*
//! inner oracle (e.g. a `GraphOracle`), so repeated breakdowns over equal
//! inputs skip even graph re-evaluation.
//!
//! [`report`]: ParallelMultiSimOracle::report

use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

use icost::CostOracle;
use uarch_obs::ledger::{JobRecord, Ledger, LedgerRecord, Provenance};
use uarch_obs::{global, Registry};
use uarch_sim::{EngineStats, Idealization, PipelineStalls, Simulator};
use uarch_trace::{EventSet, MachineConfig, Trace};

use crate::cache::SimCache;
use crate::fingerprint::{context_id, ContextId, StableHasher};
use crate::pool::{default_threads, parallel_map};
use crate::report::{Metrics, RunReport};

/// Stable fingerprint of one job's answer: equal `(set, cycles)` pairs
/// hash equally across runs, machines, and cache tiers — the identity
/// the `icost-obs diff` regression gate compares.
pub(crate) fn result_hash(set: EventSet, cycles: u64) -> String {
    let mut h = StableHasher::default();
    set.bits().hash(&mut h);
    cycles.hash(&mut h);
    format!("{:016x}", h.finish())
}

/// A parallel, memoized multi-simulation oracle over one
/// `(trace, config, warm sets)` context.
#[derive(Debug)]
pub struct ParallelMultiSimOracle<'a> {
    config: &'a MachineConfig,
    trace: &'a Trace,
    warm_data: &'a [u64],
    warm_code: &'a [u64],
    ctx: ContextId,
    threads: usize,
    cache: SimCache,
    metrics: Metrics,
    ledger: Ledger,
    /// Run id under which this oracle's jobs are ledgered; `None` when
    /// the global ledger is disabled (the off path never reaches the
    /// ledger again).
    ledger_run: Option<u64>,
}

impl<'a> ParallelMultiSimOracle<'a> {
    /// An oracle over a cold machine (no cache/TLB warmup), with its own
    /// private in-memory cache and one worker per core.
    pub fn new(config: &'a MachineConfig, trace: &'a Trace) -> ParallelMultiSimOracle<'a> {
        ParallelMultiSimOracle::warmed(config, trace, &[], &[])
    }

    /// An oracle whose every simulation pre-touches `warm_data` /
    /// `warm_code` (steady-state measurement, as `run_warmed`).
    pub fn warmed(
        config: &'a MachineConfig,
        trace: &'a Trace,
        warm_data: &'a [u64],
        warm_code: &'a [u64],
    ) -> ParallelMultiSimOracle<'a> {
        let threads = default_threads();
        let ledger = uarch_obs::ledger::global().clone();
        let ledger_run =
            (ledger.is_enabled() || ledger.has_subscribers()).then(|| ledger.next_run_id());
        ParallelMultiSimOracle {
            config,
            trace,
            warm_data,
            warm_code,
            ctx: context_id(config, trace, warm_data, warm_code),
            threads,
            cache: SimCache::new(),
            metrics: Metrics::new(threads),
            ledger,
            ledger_run,
        }
    }

    /// Cap (or raise) the worker count for parallel waves.
    pub fn with_threads(mut self, threads: usize) -> ParallelMultiSimOracle<'a> {
        self.threads = threads.max(1);
        self.metrics.threads.set(self.threads as i64);
        self
    }

    /// Share `cache` instead of the private one: oracles over equal
    /// contexts then reuse each other's simulations, and a disk-backed
    /// cache persists them across processes.
    pub fn with_cache(mut self, cache: SimCache) -> ParallelMultiSimOracle<'a> {
        self.cache = cache;
        self
    }

    /// This oracle's simulation-context fingerprint.
    pub fn context(&self) -> ContextId {
        self.ctx
    }

    /// The run id this oracle's jobs are ledgered under, when the
    /// global run ledger is enabled. `Runner::run` writes the matching
    /// run-header record.
    pub fn ledger_run_id(&self) -> Option<u64> {
        self.ledger_run
    }

    /// Append one job record to the run ledger (no-op when disabled).
    fn ledger_job(
        &self,
        set: EventSet,
        provenance: Provenance,
        cycles: u64,
        wall: Duration,
        stalls: Option<&PipelineStalls>,
    ) {
        let Some(run) = self.ledger_run else { return };
        let stalls = stalls
            .map(|s| {
                s.rows()
                    .iter()
                    .filter(|(_, v)| *v > 0)
                    .map(|(name, v)| (name.to_string(), *v))
                    .collect()
            })
            .unwrap_or_default();
        self.ledger.append(&LedgerRecord::Job(JobRecord {
            run,
            set: set.to_string(),
            provenance,
            cycles,
            wall_us: wall.as_micros() as u64,
            hash: result_hash(set, cycles),
            stalls,
            // Stamped by Ledger::append from the causal context.
            trace: String::new(),
        }));
    }

    /// The live metrics registry the oracle's counters live in
    /// (`runner.*` and `sim.stall.*` names; includes the per-simulation
    /// cycle histogram the [`RunReport`] view omits).
    pub fn metrics(&self) -> &Registry {
        self.metrics.registry()
    }

    /// A snapshot of the telemetry accumulated so far.
    pub fn report(&self) -> RunReport {
        self.metrics.report()
    }

    /// Take the telemetry, resetting the counters.
    pub fn take_report(&mut self) -> RunReport {
        let report = self.metrics.report();
        self.metrics.reset();
        report
    }

    /// Probe the cache, under a span so cache latency shows in traces.
    fn probe(&self, set: EventSet) -> (Option<u64>, bool) {
        let _sp = global().span("runner", "cache.probe");
        self.cache.get(self.ctx, set)
    }

    /// Count one cache answer against the tier that served it.
    fn count_hit(&self, from_disk: bool) {
        if from_disk {
            self.metrics.disk_hits.inc();
        } else {
            self.metrics.cache_hits.inc();
        }
    }

    fn simulate(&self, set: EventSet) -> (u64, PipelineStalls, EngineStats) {
        let tracer = global();
        let _sp = if tracer.is_enabled() {
            tracer.span_with("runner", "sim", vec![("set", set.to_string())])
        } else {
            tracer.span("runner", "sim")
        };
        let r = Simulator::new(self.config).run_warmed(
            self.trace,
            Idealization::from(set),
            self.warm_data,
            self.warm_code,
        );
        (r.cycles, r.stalls, r.engine)
    }

    /// Book one executed simulation: counters, stall taxonomy, cache.
    fn record_sim(
        &self,
        set: EventSet,
        cycles: u64,
        stalls: &PipelineStalls,
        engine: &EngineStats,
    ) {
        self.metrics.sims_run.inc();
        self.metrics.cycles_simulated.add(cycles);
        self.metrics.insts_simulated.add(self.trace.len() as u64);
        self.metrics.sim_cycles.record(cycles);
        self.metrics.absorb_stalls(stalls);
        self.metrics.absorb_engine(engine);
        self.cache.insert(self.ctx, set, cycles);
    }

    /// Cycles under idealization of `set`, via cache or simulation.
    fn cycles(&mut self, set: EventSet) -> u64 {
        self.metrics.jobs_requested.inc();
        let probe_start = self.ledger_run.map(|_| Instant::now());
        let (hit, from_disk) = self.probe(set);
        if let Some(cycles) = hit {
            self.count_hit(from_disk);
            if let Some(start) = probe_start {
                let tier = if from_disk {
                    Provenance::Disk
                } else {
                    Provenance::Memory
                };
                self.ledger_job(set, tier, cycles, start.elapsed(), None);
            }
            return cycles;
        }
        let start = Instant::now();
        let (cycles, stalls, engine) = self.simulate(set);
        let wall = start.elapsed();
        Metrics::add_wall(&self.metrics.sim_wall_us, wall);
        self.record_sim(set, cycles, &stalls, &engine);
        self.ledger_job(set, Provenance::Computed, cycles, wall, Some(&stalls));
        cycles
    }
}

impl CostOracle for ParallelMultiSimOracle<'_> {
    fn cost(&mut self, set: EventSet) -> i64 {
        self.metrics.queries.inc();
        if set.is_empty() {
            return 0;
        }
        let base = self.cycles(EventSet::EMPTY) as i64;
        base - self.cycles(set) as i64
    }

    fn baseline(&mut self) -> u64 {
        self.metrics.queries.inc();
        self.cycles(EventSet::EMPTY)
    }

    /// Expand `sets` into the minimal set of uncached distinct jobs
    /// (always including the `∅` baseline) and execute them as one
    /// parallel wave with deterministic result placement.
    fn prefetch(&mut self, sets: &[EventSet]) {
        let tracer = global();
        let expand_start = Instant::now();
        let mut jobs: Vec<EventSet> = Vec::with_capacity(sets.len() + 1);
        {
            let _dedup = tracer.span("runner", "dedup");
            for &set in std::iter::once(&EventSet::EMPTY).chain(sets) {
                self.metrics.jobs_requested.inc();
                if jobs.contains(&set) {
                    self.metrics.jobs_deduped.inc();
                    continue;
                }
                let probe_start = self.ledger_run.map(|_| Instant::now());
                let (hit, from_disk) = self.probe(set);
                if let Some(cycles) = hit {
                    self.count_hit(from_disk);
                    if let Some(start) = probe_start {
                        let tier = if from_disk {
                            Provenance::Disk
                        } else {
                            Provenance::Memory
                        };
                        self.ledger_job(set, tier, cycles, start.elapsed(), None);
                    }
                } else {
                    jobs.push(set);
                }
            }
        }
        Metrics::add_wall(&self.metrics.expand_wall_us, expand_start.elapsed());
        if jobs.is_empty() {
            return;
        }

        let sim_start = Instant::now();
        let results = {
            let _wave = if tracer.is_enabled() {
                tracer.span_with("runner", "wave", vec![("jobs", jobs.len().to_string())])
            } else {
                tracer.span("runner", "wave")
            };
            parallel_map(&jobs, self.threads, |&set| {
                let job_start = Instant::now();
                let (cycles, stalls, engine) = self.simulate(set);
                (cycles, stalls, engine, job_start.elapsed())
            })
        };
        Metrics::add_wall(&self.metrics.sim_wall_us, sim_start.elapsed());
        for (&set, (cycles, stalls, engine, wall)) in jobs.iter().zip(&results) {
            self.record_sim(set, *cycles, stalls, engine);
            self.ledger_job(set, Provenance::Computed, *cycles, *wall, Some(stalls));
        }
    }
}

/// Content-addressed caching around any inner [`CostOracle`].
///
/// The wrapper stores `t(S) = baseline − cost(S)` under the caller's
/// [`ContextId`], so equal analyses in later oracles (or later processes,
/// with a disk-backed [`SimCache`]) are answered without touching the
/// inner oracle at all. `cost(S)` values are bit-identical to the inner
/// oracle's by construction.
#[derive(Debug)]
pub struct CachedOracle<O> {
    inner: O,
    ctx: ContextId,
    cache: SimCache,
    report: RunReport,
}

impl<O: CostOracle> CachedOracle<O> {
    /// Wrap `inner`, keying cache entries by `ctx`.
    ///
    /// `ctx` must identify everything the inner oracle's answers depend
    /// on — build it with [`context_id`](crate::context_id) from the
    /// trace/config/warm sets the inner oracle observes.
    pub fn new(inner: O, ctx: ContextId, cache: SimCache) -> CachedOracle<O> {
        CachedOracle {
            inner,
            ctx,
            cache,
            report: RunReport::new(1),
        }
    }

    /// Telemetry accumulated so far.
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// The wrapped oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// Count one cache answer against the tier that served it.
    fn count_hit(&mut self, from_disk: bool) {
        if from_disk {
            self.report.disk_hits += 1;
        } else {
            self.report.cache_hits += 1;
        }
    }
}

impl<O: CostOracle> CostOracle for CachedOracle<O> {
    fn cost(&mut self, set: EventSet) -> i64 {
        self.report.queries += 1;
        if set.is_empty() {
            return 0;
        }
        self.report.jobs_requested += 1;
        let base = self.baseline_cycles() as i64;
        let (hit, from_disk) = self.cache.get(self.ctx, set);
        if let Some(cycles) = hit {
            self.count_hit(from_disk);
            return base - cycles as i64;
        }
        let cost = self.inner.cost(set);
        self.report.sims_run += 1;
        self.cache.insert(self.ctx, set, (base - cost) as u64);
        cost
    }

    fn baseline(&mut self) -> u64 {
        self.report.queries += 1;
        self.baseline_cycles()
    }

    fn prefetch(&mut self, sets: &[EventSet]) {
        // Forward the hint: a batched inner oracle still parallelizes the
        // residue the cache cannot answer.
        let uncached: Vec<EventSet> = sets
            .iter()
            .copied()
            .filter(|&s| self.cache.get(self.ctx, s).0.is_none())
            .collect();
        if !uncached.is_empty() {
            self.inner.prefetch(&uncached);
        }
    }
}

impl<O: CostOracle> CachedOracle<O> {
    fn baseline_cycles(&mut self) -> u64 {
        let (hit, from_disk) = self.cache.get(self.ctx, EventSet::EMPTY);
        if let Some(cycles) = hit {
            self.count_hit(from_disk);
            return cycles;
        }
        let base = self.inner.baseline();
        self.cache.insert(self.ctx, EventSet::EMPTY, base);
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icost::MultiSimOracle;
    use uarch_trace::{EventClass, Reg, TraceBuilder};

    fn kernel(n: u64) -> Trace {
        let mut b = TraceBuilder::new();
        for k in 0..n {
            b.load(Reg::int(1), 0x10_0000 + k * 4096);
            b.alu(Reg::int(2), &[Reg::int(1)]);
        }
        b.finish()
    }

    #[test]
    fn matches_serial_multisim_exactly() {
        let cfg = MachineConfig::table6();
        let t = kernel(30);
        let mut serial = MultiSimOracle::new(&cfg, &t);
        let mut par = ParallelMultiSimOracle::new(&cfg, &t).with_threads(4);
        let u = EventSet::from([EventClass::Dmiss, EventClass::Win, EventClass::Bmisp]);
        let sets: Vec<EventSet> = u.subsets().collect();
        par.prefetch(&sets);
        for s in sets {
            assert_eq!(par.cost(s), serial.cost(s), "cost({s}) diverged");
        }
        assert_eq!(par.baseline(), serial.baseline());
    }

    #[test]
    fn prefetch_dedupes_and_caches() {
        let cfg = MachineConfig::table6();
        let t = kernel(10);
        let mut par = ParallelMultiSimOracle::new(&cfg, &t).with_threads(2);
        let a = EventSet::single(EventClass::Dmiss);
        let b = EventSet::single(EventClass::Dl1);
        par.prefetch(&[a, b, a, b, a]);
        let r = par.report();
        assert_eq!(r.sims_run, 3, "∅, a, b"); // baseline + two distinct
        assert_eq!(r.jobs_deduped, 3, "three duplicate requests collapsed");
        // A second identical wave is pure cache hits.
        par.prefetch(&[a, b]);
        let r = par.report();
        assert_eq!(r.sims_run, 3);
        assert_eq!(r.cache_hits, 3);
        // And cost() answers come from cache, not fresh sims.
        let _ = par.cost(a);
        assert_eq!(par.report().sims_run, 3);
    }

    #[test]
    fn report_carries_stalls_and_registry_agrees() {
        let cfg = MachineConfig::table6();
        let t = kernel(20);
        let mut par = ParallelMultiSimOracle::new(&cfg, &t).with_threads(2);
        let d = EventSet::single(EventClass::Dmiss);
        par.prefetch(&[d]);
        let r = par.report();
        assert!(
            r.stalls.total() > 0,
            "a miss-heavy kernel must stall somewhere: {:?}",
            r.stalls
        );
        // The baseline run sees the 4 KiB-stride loads miss.
        assert!(r.stalls.load_l2_fill + r.stalls.load_mem_fill > 0);
        // The RunReport view and the raw registry are the same numbers.
        let snap = par.metrics().snapshot();
        assert_eq!(snap.counter("runner.sims_run"), r.sims_run);
        assert_eq!(
            snap.counter("sim.stall.load_mem_fill"),
            r.stalls.load_mem_fill
        );
        // take_report drains: a second take sees zeros.
        let taken = par.take_report();
        assert_eq!(taken.sims_run, r.sims_run);
        assert_eq!(par.report(), RunReport::new(2));
    }

    #[test]
    fn shared_cache_spans_oracle_instances() {
        let cfg = MachineConfig::table6();
        let t = kernel(10);
        let cache = SimCache::new();
        let s = EventSet::single(EventClass::Dmiss);
        let first = {
            let mut o = ParallelMultiSimOracle::new(&cfg, &t).with_cache(cache.clone());
            o.cost(s)
        };
        let mut o2 = ParallelMultiSimOracle::new(&cfg, &t).with_cache(cache);
        assert_eq!(o2.cost(s), first);
        assert_eq!(o2.report().sims_run, 0, "second oracle never simulates");
        assert_eq!(o2.report().cache_hits, 2, "baseline and set both hit");
    }

    #[test]
    fn disk_served_answers_count_as_disk_hits() {
        let dir = std::env::temp_dir().join(format!("oracle-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = MachineConfig::table6();
        let t = kernel(10);
        let s = EventSet::single(EventClass::Dmiss);
        {
            let cache = SimCache::with_disk(&dir).expect("create");
            let mut o = ParallelMultiSimOracle::new(&cfg, &t).with_cache(cache);
            let _ = o.cost(s);
            let r = o.report();
            assert_eq!((r.sims_run, r.disk_hits), (2, 0));
        }
        // A fresh process: same query, all answers from the disk tier —
        // and the reuse rate reflects that instead of reporting 0%.
        let cache = SimCache::with_disk(&dir).expect("open");
        let mut o2 = ParallelMultiSimOracle::new(&cfg, &t).with_cache(cache);
        let _ = o2.cost(s);
        let r = o2.report();
        assert_eq!(r.sims_run, 0);
        assert_eq!(r.cache_hits, 0, "memory tier contributed nothing");
        assert_eq!(r.disk_hits, 2, "baseline and set served from disk");
        assert_eq!(r.reuse_rate(), Some(1.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cached_oracle_is_transparent() {
        let cfg = MachineConfig::table6();
        let t = kernel(20);
        let ctx = context_id(&cfg, &t, &[], &[]);
        let mut plain = MultiSimOracle::new(&cfg, &t);
        let mut cached = CachedOracle::new(MultiSimOracle::new(&cfg, &t), ctx, SimCache::new());
        for c in EventClass::ALL {
            let s = EventSet::single(c);
            assert_eq!(cached.cost(s), plain.cost(s));
        }
        assert_eq!(cached.baseline(), plain.baseline());
        // Re-query through a fresh wrapper sharing nothing: must recompute.
        // Through a wrapper sharing the cache: must not.
        let cache = SimCache::new();
        let mut a = CachedOracle::new(MultiSimOracle::new(&cfg, &t), ctx, cache.clone());
        let s = EventSet::single(EventClass::Dmiss);
        let v = a.cost(s);
        let mut b = CachedOracle::new(MultiSimOracle::new(&cfg, &t), ctx, cache);
        assert_eq!(b.cost(s), v);
        assert_eq!(b.report().sims_run, 0);
        assert!(b.report().cache_hits >= 1);
    }
}
