//! Attribution-quality regression gates for the auditor itself.
//!
//! Two pins, both over the paper's Table-4a/Table-7 benchmark
//! stand-ins: a well-calibrated model must *confirm* (≥90% of checked
//! base-category attributions within tolerance across the suite), and
//! a deliberately mis-calibrated model must be *refuted* with the
//! mis-modeled category named in the evidence — the auditor is only
//! useful if it both trusts good models and catches bad ones.

use uarch_audit::{audit_attribution, AuditConfig, Verdict};
use uarch_graph::{breakdown_lattice, DepGraph, LaneScratch, DEFAULT_CHUNK};
use uarch_sim::{Idealization, SimResult, Simulator};
use uarch_trace::{EventClass, MachineConfig, Trace};
use uarch_workloads::{generate, BenchProfile, Workload};

const INSTS: usize = 6_000;
const SEED: u64 = 2003;

fn baseline(w: &Workload, config: &MachineConfig) -> SimResult {
    Simulator::new(config).run_warmed(&w.trace, Idealization::none(), &w.warm_data, &w.warm_code)
}

/// The graph-side lattice of `trace` as modeled by `config`.
fn lattice(
    trace: &Trace,
    result: &SimResult,
    config: &MachineConfig,
) -> (u64, [i64; 8], Vec<(uarch_trace::EventSet, i64)>) {
    let graph = DepGraph::build(trace, result, config);
    let mut scratch = LaneScratch::new();
    breakdown_lattice(&graph, DEFAULT_CHUNK, &mut scratch)
}

#[test]
fn table7_suite_confirms_at_least_90_pct_of_checked_categories() {
    let config = MachineConfig::table6();
    let cfg = AuditConfig::default();
    let mut confirmed = 0u64;
    let mut refuted = 0u64;
    let mut checked_profiles = 0usize;
    for profile in BenchProfile::suite() {
        let w = generate(profile, INSTS, SEED);
        let result = baseline(&w, &config);
        let (base, costs, pairs) = lattice(&w.trace, &result, &config);
        let audit = audit_attribution(profile.name, base, &costs, &pairs, &result.stalls, &cfg);
        assert!(base > 0, "{}: empty baseline", profile.name);
        if audit.checked {
            checked_profiles += 1;
        }
        confirmed += audit.confirmed();
        refuted += audit.refuted();
        assert!(
            audit.verdict() != Verdict::Refuted || !audit.evidence.is_empty(),
            "{}: refuted without evidence",
            profile.name
        );
    }
    assert!(
        checked_profiles >= 10,
        "only {checked_profiles}/12 profiles cleared the noise floor"
    );
    let total = confirmed + refuted;
    assert!(total > 0, "no categories were checkable");
    let rate = confirmed as f64 / total as f64;
    assert!(
        rate >= 0.90,
        "well-calibrated model confirmed only {confirmed}/{total} ({:.1}%) checked categories",
        rate * 100.0
    );
}

#[test]
fn miscalibrated_memory_latency_is_refuted_and_dmiss_is_named() {
    // The "real machine" (counter side) is table6; the model under
    // audit (graph side) thinks memory is nearly free. A memory-bound
    // workload must expose that as a dmiss refutation.
    let real = MachineConfig::table6();
    let mut wrong = MachineConfig::table6();
    wrong.mem_latency = 5;
    let w = generate(BenchProfile::by_name("mcf").expect("mcf"), INSTS, SEED);
    let counters = baseline(&w, &real);
    let cfg = AuditConfig::default();

    // Control arm: the honest model confirms on the same workload.
    let honest = lattice(&w.trace, &counters, &real);
    let audit = audit_attribution(
        "run",
        honest.0,
        &honest.1,
        &honest.2,
        &counters.stalls,
        &cfg,
    );
    assert_eq!(
        audit.verdict(),
        Verdict::Confirmed,
        "honest model should confirm: {}",
        audit.evidence
    );

    // Mis-calibrated arm: graph and its costs come from the wrong
    // config, counters from the real machine.
    let modeled = baseline(&w, &wrong);
    let (base, costs, pairs) = lattice(&w.trace, &modeled, &wrong);
    let audit = audit_attribution("run", base, &costs, &pairs, &counters.stalls, &cfg);
    assert_eq!(
        audit.verdict(),
        Verdict::Refuted,
        "wrong memory latency must be caught"
    );
    let dmiss = &audit.categories[EventClass::Dmiss as usize];
    assert_eq!(dmiss.class, EventClass::Dmiss);
    assert_eq!(
        dmiss.verdict,
        Verdict::Refuted,
        "the mis-modeled category itself must be refuted (divergence {}pm)",
        dmiss.divergence_pm
    );
    assert!(
        audit.evidence.contains("dmiss"),
        "evidence must name dmiss: {}",
        audit.evidence
    );
    // The model underestimates memory, so dmiss is *under*-attributed
    // relative to the counters: signed divergence is negative.
    assert!(
        dmiss.divergence_pm < 0,
        "expected under-attribution, got {}pm",
        dmiss.divergence_pm
    );
}

#[test]
fn waterfalls_are_identical_across_the_wire() {
    // A rendered waterfall must survive ledger serialization: whoever
    // holds the record — the server's /explain response, the CLI's
    // ledger tail, an SSE subscriber — reproduces the same table.
    let config = MachineConfig::table6();
    let w = generate(BenchProfile::by_name("gcc").expect("gcc"), INSTS, SEED);
    let result = baseline(&w, &config);
    let (base, costs, pairs) = lattice(&w.trace, &result, &config);
    let audit = audit_attribution(
        "run",
        base,
        &costs,
        &pairs,
        &result.stalls,
        &AuditConfig::default(),
    );
    let record = audit.to_record(7);
    let line = uarch_obs::ledger::LedgerRecord::Audit(record.clone()).to_json_line();
    let (parsed, skipped) = uarch_obs::ledger::parse_ledger_lenient(&line).expect("parses");
    assert_eq!(skipped, 0);
    let uarch_obs::ledger::LedgerRecord::Audit(roundtripped) = &parsed[0] else {
        panic!("wrong kind");
    };
    assert_eq!(&record, roundtripped);
    assert_eq!(
        uarch_audit::render_waterfall(&record),
        uarch_audit::render_waterfall(roundtripped)
    );
}
