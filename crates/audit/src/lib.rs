//! Attribution auditing: do the graph's interaction-cost breakdowns
//! agree with the simulator's own stall accounting?
//!
//! The dependence-graph model attributes a run's cycles to the eight
//! base categories (plus their pairwise interactions); the simulator
//! independently counts per-cause stall cycles ([`PipelineStalls`]).
//! The two disagree *systematically* when the machine model is wrong —
//! a mis-calibrated memory latency inflates (or starves) the `dmiss`
//! attribution while the counters keep reporting what the pipeline
//! actually did. This crate reconciles the two sides for any analyzed
//! range and renders the result as a *waterfall*: per category, the
//! overlap-adjusted attributed cycles next to the mapped counter
//! cycles, a signed share divergence, and a verdict.
//!
//! # The residual definition
//!
//! Raw stall counters and critical-path attributions are in different
//! units: a counter charges every cycle a cause was present, while the
//! graph charges only net critical-path cycles (memory-level
//! parallelism makes counters over-count by design). Comparing raw
//! magnitudes would refute every memory-bound workload. Instead both
//! sides are normalized to *shares* of their own checkable total:
//!
//! * `attributed(c) = cost(c) + ½·Σ_{d≠c} icost({c,d})` — the singleton
//!   cost plus half of every pairwise interaction touching `c`
//!   (a pairwise Shapley split of the overlap).
//! * `counter(c)` — the stall rows mapped to category `c` (see
//!   [`counter_cycles`]); categories without counter coverage are
//!   *unmodeled* and never refuted.
//! * `divergence(c) = share_attributed(c) − share_counter(c)`, in
//!   per-mille; the overall score is the total-variation distance
//!   between the two share vectors.
//!
//! A category is **confirmed** when `|divergence| ≤ tolerance_pm`,
//! **refuted** otherwise. Ranges whose checkable counter total is
//! below the noise floor are skipped (every category unmodeled):
//! share estimates from a handful of stall cycles are noise.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;

use uarch_obs::ledger::AuditRecord;
use uarch_obs::{Histogram, Registry};
use uarch_sim::PipelineStalls;
use uarch_trace::{EventClass, EventSet};

/// Environment variable enabling the runner / streaming audit hooks
/// (`1` enables; anything else leaves them off).
pub const AUDIT_ENV: &str = "ICOST_AUDIT";

/// Environment variable overriding the per-category share-divergence
/// tolerance, in per-mille.
pub const AUDIT_TOLERANCE_ENV: &str = "ICOST_AUDIT_TOLERANCE_PM";

/// Environment variable overriding the checkable-counter noise floor,
/// in cycles.
pub const AUDIT_NOISE_FLOOR_ENV: &str = "ICOST_AUDIT_NOISE_FLOOR";

/// Auditing thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditConfig {
    /// Per-category share divergence (attributed vs. counter, per-mille
    /// of the checkable total) beyond which a category is refuted.
    pub tolerance_pm: u64,
    /// Minimum checkable counter cycles for an audit to mean anything;
    /// below it the range is skipped (all categories unmodeled).
    pub noise_floor: u64,
}

impl Default for AuditConfig {
    fn default() -> AuditConfig {
        AuditConfig {
            // Share-space comparison across cost models is inherently
            // approximate (MLP, overlap splitting); 250‰ separates the
            // agreement seen on well-calibrated Table-7 profiles from
            // the shifts a wrong latency produces.
            tolerance_pm: 250,
            noise_floor: 64,
        }
    }
}

impl AuditConfig {
    /// The audit configuration from the environment, or `None` when
    /// [`AUDIT_ENV`] is not `1` (the hooks stay off-path).
    pub fn from_env() -> Option<AuditConfig> {
        if std::env::var(AUDIT_ENV).ok().as_deref() != Some("1") {
            return None;
        }
        let mut cfg = AuditConfig::default();
        if let Some(t) = std::env::var(AUDIT_TOLERANCE_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.tolerance_pm = t;
        }
        if let Some(f) = std::env::var(AUDIT_NOISE_FLOOR_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.noise_floor = f;
        }
        Some(cfg)
    }
}

/// The outcome of checking one category (or a whole audit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Counters agree with the attribution within tolerance.
    Confirmed,
    /// Counters disagree beyond tolerance.
    Refuted,
    /// No counter coverage (or below the noise floor): not checkable.
    Unmodeled,
}

impl Verdict {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Confirmed => "confirmed",
            Verdict::Refuted => "refuted",
            Verdict::Unmodeled => "unmodeled",
        }
    }
}

/// One category's reconciliation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CategoryAudit {
    /// The base category.
    pub class: EventClass,
    /// Overlap-adjusted attributed cycles
    /// (`cost(c) + ½·Σ icost({c,d})`).
    pub attributed: i64,
    /// Mapped stall-counter cycles, `None` for unmodeled categories.
    pub counter: Option<u64>,
    /// Signed share divergence (attributed − counter), per-mille; 0 for
    /// unmodeled categories.
    pub divergence_pm: i64,
    /// This category's verdict.
    pub verdict: Verdict,
}

/// One reconciled range: the graph-side breakdown checked against the
/// counter-side stall accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Audit {
    /// What range was audited (e.g. `run`, `window 3`).
    pub scope: String,
    /// Baseline critical-path cycles of the range.
    pub baseline: u64,
    /// The tolerance the verdicts used, per-mille.
    pub tolerance_pm: u64,
    /// Total-variation distance between the share vectors, per-mille.
    pub score_pm: u64,
    /// Whether the range cleared the noise floor and was checked.
    pub checked: bool,
    /// Per-category outcomes, in [`EventClass::ALL`] order.
    pub categories: Vec<CategoryAudit>,
    /// Human-readable refuting evidence; empty when nothing refuted.
    pub evidence: String,
}

impl Audit {
    fn count(&self, verdict: Verdict) -> u64 {
        self.categories
            .iter()
            .filter(|c| c.verdict == verdict)
            .count() as u64
    }

    /// Categories confirmed.
    pub fn confirmed(&self) -> u64 {
        self.count(Verdict::Confirmed)
    }

    /// Categories refuted.
    pub fn refuted(&self) -> u64 {
        self.count(Verdict::Refuted)
    }

    /// Categories without counter coverage.
    pub fn unmodeled(&self) -> u64 {
        self.count(Verdict::Unmodeled)
    }

    /// The audit's overall verdict: refuted if any category is, else
    /// confirmed if any category is, else unmodeled.
    pub fn verdict(&self) -> Verdict {
        if self.refuted() > 0 {
            Verdict::Refuted
        } else if self.confirmed() > 0 {
            Verdict::Confirmed
        } else {
            Verdict::Unmodeled
        }
    }

    /// The self-contained ledger record for this audit. The maps carry
    /// everything [`render_waterfall`] needs, so any holder of the
    /// record reproduces the identical table.
    pub fn to_record(&self, run: u64) -> AuditRecord {
        let mut attributed = BTreeMap::new();
        let mut counters = BTreeMap::new();
        let mut divergence = BTreeMap::new();
        for c in &self.categories {
            attributed.insert(c.class.name().to_string(), c.attributed);
            if let Some(k) = c.counter {
                counters.insert(c.class.name().to_string(), k as i64);
                // A divergence entry means "this category was judged";
                // noise-floor skips stay absent, but an absolute-
                // coherence refutation is a judgement even when the
                // share comparison itself was skipped.
                if self.checked || c.verdict == Verdict::Refuted {
                    divergence.insert(c.class.name().to_string(), c.divergence_pm);
                }
            }
        }
        AuditRecord {
            run,
            scope: self.scope.clone(),
            baseline: self.baseline,
            tolerance_pm: self.tolerance_pm,
            score_pm: self.score_pm,
            confirmed: self.confirmed(),
            refuted: self.refuted(),
            unmodeled: self.unmodeled(),
            verdict: self.verdict().as_str().to_string(),
            attributed,
            counters,
            divergence,
            evidence: self.evidence.clone(),
            // Left empty: Ledger::append stamps the appending thread's
            // causal context at write time.
            trace: String::new(),
        }
    }
}

/// The stall-counter cycles charged to `class`, or `None` when no
/// counter row covers it.
///
/// `issue_fu_busy` is deliberately excluded: it counts failed issue
/// *attempts*, not cycles, so it cannot enter a cycle-share comparison
/// — which leaves `shalu`/`lgalu` (and `dl1`, whose hit latency is not
/// a stall cause at all) unmodeled.
pub fn counter_cycles(class: EventClass, stalls: &PipelineStalls) -> Option<u64> {
    match class {
        EventClass::Bmisp => Some(stalls.fetch_bmisp_recovery),
        EventClass::Imiss => Some(stalls.fetch_imiss_l2_fill + stalls.fetch_imiss_mem_fill),
        EventClass::Dmiss => Some(stalls.load_l2_fill + stalls.load_mem_fill),
        EventClass::Win => Some(stalls.dispatch_window_full),
        EventClass::Bw => Some(stalls.fetch_queue_full),
        EventClass::Dl1 | EventClass::ShortAlu | EventClass::LongAlu => None,
    }
}

/// Reconcile one range's graph-side breakdown against its stall
/// counters.
///
/// `costs` are the eight singleton `cost(c)` values in
/// [`EventClass::ALL`] order; `pairs` the pairwise `icost({a,b})`
/// values (pass all 28 for an exact overlap split — missing pairs are
/// treated as zero interaction). `baseline` is the range's `t(∅)`.
pub fn audit_attribution(
    scope: &str,
    baseline: u64,
    costs: &[i64; 8],
    pairs: &[(EventSet, i64)],
    stalls: &PipelineStalls,
    cfg: &AuditConfig,
) -> Audit {
    // Overlap-adjusted attribution: each pair's interaction is split
    // evenly between its two members (×2 fixed-point to stay integer).
    let mut attributed_x2 = [0i64; 8];
    for (i, c) in costs.iter().enumerate() {
        attributed_x2[i] = c * 2;
    }
    for (set, icost) in pairs {
        if set.len() != 2 {
            continue;
        }
        for class in set.iter() {
            attributed_x2[class as usize] += icost;
        }
    }
    let attributed: Vec<i64> = attributed_x2.iter().map(|a| a.div_euclid(2)).collect();

    let counters: Vec<Option<u64>> = EventClass::ALL
        .iter()
        .map(|&c| counter_cycles(c, stalls))
        .collect();

    // Shares over the *checkable* categories only, both sides clamped
    // non-negative (a net-negative attribution contributes no share).
    let a_total: i64 = EventClass::ALL
        .iter()
        .enumerate()
        .filter(|(i, _)| counters[*i].is_some())
        .map(|(i, _)| attributed[i].max(0))
        .sum();
    let k_total: u64 = counters.iter().flatten().sum();
    let checked = baseline > 0 && k_total >= cfg.noise_floor && a_total > 0;

    let mut categories = Vec::with_capacity(8);
    let mut tv = 0.0f64;
    let mut evidence = Vec::new();
    for (i, &class) in EventClass::ALL.iter().enumerate() {
        let (divergence_pm, verdict) = match counters[i] {
            // Absolute-coherence check, immune to the share
            // normalization: every mapped counter is (at most) one
            // stall cycle per machine cycle, so a counter larger than
            // the modeled baseline proves the model's timescale wrong
            // (e.g. a memory latency far below the machine's) even
            // when uniform rescaling leaves every share intact.
            Some(k) if baseline > 0 && k >= cfg.noise_floor && k > baseline => {
                // Clamp past the tolerance so the record stays
                // self-describing: renderers re-derive verdicts from
                // |divergence| vs tolerance alone.
                let excess_pm = (((k as f64 / baseline as f64 - 1.0) * 1000.0).round() as i64)
                    .max(cfg.tolerance_pm as i64 + 1);
                evidence.push(format!(
                    "{}: {} machine stall cycles cannot fit the modeled {}-cycle baseline (model timescale off by {:+}pm)",
                    class.name(),
                    k,
                    baseline,
                    -excess_pm,
                ));
                (-excess_pm, Verdict::Refuted)
            }
            Some(k) if checked => {
                let a_share = attributed[i].max(0) as f64 / a_total as f64;
                let k_share = k as f64 / k_total as f64;
                let diff = a_share - k_share;
                tv += diff.abs();
                let diff_pm = (diff * 1000.0).round() as i64;
                let verdict = if diff_pm.unsigned_abs() <= cfg.tolerance_pm {
                    Verdict::Confirmed
                } else {
                    evidence.push(format!(
                        "{}: attributed {:.1}% vs counters {:.1}% (|{}|pm > {}pm)",
                        class.name(),
                        a_share * 100.0,
                        k_share * 100.0,
                        diff_pm,
                        cfg.tolerance_pm,
                    ));
                    Verdict::Refuted
                };
                (diff_pm, verdict)
            }
            _ => (0, Verdict::Unmodeled),
        };
        categories.push(CategoryAudit {
            class,
            attributed: attributed[i],
            counter: counters[i],
            divergence_pm,
            verdict,
        });
    }

    Audit {
        scope: scope.to_string(),
        baseline,
        tolerance_pm: cfg.tolerance_pm,
        score_pm: (tv * 500.0).round() as u64,
        checked,
        categories,
        evidence: evidence.join("; "),
    }
}

/// Render one audit record as the waterfall table — the one renderer
/// both `icost-obs audit` and `POST /explain` consumers share, so the
/// same record always produces byte-identical output.
pub fn render_waterfall(record: &AuditRecord) -> String {
    let mut out = format!(
        "audit {} [{}]: score {}pm (tolerance {}pm), {} confirmed / {} refuted / {} unmodeled, baseline {}\n",
        record.scope,
        record.verdict,
        record.score_pm,
        record.tolerance_pm,
        record.confirmed,
        record.refuted,
        record.unmodeled,
        record.baseline,
    );
    out.push_str("  category    attributed       counter  delta(pm)  verdict\n");
    // Known categories render in wire (Table 4a) order; any name the
    // record carries beyond them follows, name-sorted.
    let known: Vec<&str> = EventClass::ALL.iter().map(|c| c.name()).collect();
    let names = known
        .iter()
        .copied()
        .filter(|n| record.attributed.contains_key(*n))
        .chain(
            record
                .attributed
                .keys()
                .map(String::as_str)
                .filter(|n| !known.contains(n)),
        );
    for name in names {
        let attributed = record.attributed.get(name).copied().unwrap_or(0);
        let (counter, verdict) = match record.counters.get(name) {
            Some(k) => {
                let verdict = match record.divergence.get(name) {
                    Some(d) if d.unsigned_abs() > record.tolerance_pm => "refuted",
                    Some(_) => "confirmed",
                    None => "unmodeled",
                };
                (k.to_string(), verdict)
            }
            None => ("-".to_string(), "unmodeled"),
        };
        let delta = record
            .divergence
            .get(name)
            .map_or("-".to_string(), |d| format!("{d:+}"));
        out.push_str(&format!(
            "  {name:<9} {attributed:>11} {counter:>13} {delta:>10}  {verdict}\n"
        ));
    }
    if !record.evidence.is_empty() {
        out.push_str(&format!("  evidence: {}\n", record.evidence));
    }
    out
}

/// Histogram bounds for per-category absolute divergence, per-mille.
const RESIDUAL_BOUNDS: [u64; 8] = [10, 25, 50, 100, 150, 250, 500, 1000];

/// Bound audit metrics on a registry: `audit.checks`,
/// `audit.confirmed` / `audit.refuted` / `audit.unmodeled` (category
/// verdicts), `audit.skipped` (noise-floor skips), and one
/// `audit.residual_pm.<category>` histogram per checkable category.
#[derive(Debug, Clone)]
pub struct AuditMetrics {
    checks: uarch_obs::Counter,
    confirmed: uarch_obs::Counter,
    refuted: uarch_obs::Counter,
    unmodeled: uarch_obs::Counter,
    skipped: uarch_obs::Counter,
    residual: Vec<(String, Histogram)>,
}

impl AuditMetrics {
    /// Bind (or re-bind) the audit metric family on `registry`.
    pub fn bind(registry: &Registry) -> AuditMetrics {
        let residual = EventClass::ALL
            .iter()
            .filter(|&&c| counter_cycles(c, &PipelineStalls::default()).is_some())
            .map(|c| {
                let name = c.name().to_string();
                let h = registry.histogram(&format!("audit.residual_pm.{name}"), &RESIDUAL_BOUNDS);
                (name, h)
            })
            .collect();
        AuditMetrics {
            checks: registry.counter("audit.checks"),
            confirmed: registry.counter("audit.confirmed"),
            refuted: registry.counter("audit.refuted"),
            unmodeled: registry.counter("audit.unmodeled"),
            skipped: registry.counter("audit.skipped"),
            residual,
        }
    }

    /// Record one audit record's outcome.
    pub fn observe(&self, record: &AuditRecord) {
        self.checks.inc();
        self.confirmed.add(record.confirmed);
        self.refuted.add(record.refuted);
        self.unmodeled.add(record.unmodeled);
        if record.divergence.is_empty() {
            self.skipped.inc();
        }
        for (name, h) in &self.residual {
            if let Some(d) = record.divergence.get(name) {
                h.record(d.unsigned_abs());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stalls(bmisp: u64, imiss: u64, dmiss: u64, win: u64, bw: u64) -> PipelineStalls {
        PipelineStalls {
            fetch_bmisp_recovery: bmisp,
            fetch_imiss_l2_fill: imiss,
            load_mem_fill: dmiss,
            dispatch_window_full: win,
            fetch_queue_full: bw,
            // Attempts, not cycles: must never enter the comparison.
            issue_fu_busy: 1_000_000,
            ..PipelineStalls::default()
        }
    }

    fn costs(bmisp: i64, imiss: i64, dmiss: i64, win: i64, bw: i64) -> [i64; 8] {
        let mut c = [0i64; 8];
        c[EventClass::Bmisp as usize] = bmisp;
        c[EventClass::Imiss as usize] = imiss;
        c[EventClass::Dmiss as usize] = dmiss;
        c[EventClass::Win as usize] = win;
        c[EventClass::Bw as usize] = bw;
        c
    }

    #[test]
    fn matching_shares_confirm_every_checkable_category() {
        let cfg = AuditConfig::default();
        // Counters are 2x the attributions uniformly: shares identical.
        let audit = audit_attribution(
            "run",
            1000,
            &costs(100, 50, 400, 200, 50),
            &[],
            &stalls(200, 100, 800, 400, 100),
            &cfg,
        );
        assert!(audit.checked);
        assert_eq!(audit.score_pm, 0);
        assert_eq!(audit.confirmed(), 5);
        assert_eq!(audit.refuted(), 0);
        assert_eq!(audit.unmodeled(), 3, "dl1/shalu/lgalu have no counters");
        assert_eq!(audit.verdict(), Verdict::Confirmed);
        assert!(audit.evidence.is_empty());
    }

    #[test]
    fn shifted_shares_refute_the_shifted_category() {
        let cfg = AuditConfig::default();
        // Graph says dmiss is small; counters say it dominates.
        let audit = audit_attribution(
            "run",
            1000,
            &costs(100, 0, 50, 100, 0),
            &[],
            &stalls(100, 0, 900, 100, 0),
            &cfg,
        );
        let dmiss = audit
            .categories
            .iter()
            .find(|c| c.class == EventClass::Dmiss)
            .unwrap();
        assert_eq!(dmiss.verdict, Verdict::Refuted);
        assert!(dmiss.divergence_pm < 0, "under-attributed vs counters");
        assert_eq!(audit.verdict(), Verdict::Refuted);
        assert!(audit.evidence.contains("dmiss"), "{}", audit.evidence);
    }

    #[test]
    fn pairwise_icosts_split_evenly_between_members() {
        let cfg = AuditConfig::default();
        let pair = EventSet::single(EventClass::Dmiss).with(EventClass::Win);
        let audit = audit_attribution(
            "run",
            1000,
            &costs(0, 0, 100, 100, 0),
            &[(pair, 50)],
            &stalls(0, 0, 250, 250, 0),
            &cfg,
        );
        let get = |class| {
            audit
                .categories
                .iter()
                .find(|c| c.class == class)
                .unwrap()
                .attributed
        };
        assert_eq!(get(EventClass::Dmiss), 125);
        assert_eq!(get(EventClass::Win), 125);
        assert_eq!(audit.score_pm, 0, "even split keeps shares equal");
    }

    #[test]
    fn below_noise_floor_everything_is_unmodeled() {
        let cfg = AuditConfig::default();
        let audit = audit_attribution(
            "run",
            1000,
            &costs(1, 1, 1, 1, 1),
            &[],
            &stalls(1, 1, 1, 1, 1),
            &cfg,
        );
        assert!(!audit.checked);
        assert_eq!(audit.unmodeled(), 8);
        assert_eq!(audit.verdict(), Verdict::Unmodeled);
    }

    #[test]
    fn record_roundtrip_preserves_the_waterfall() {
        let cfg = AuditConfig::default();
        let audit = audit_attribution(
            "window 3",
            4096,
            &costs(100, 0, 50, 100, 0),
            &[],
            &stalls(100, 0, 900, 100, 0),
            &cfg,
        );
        let record = audit.to_record(7);
        assert_eq!(record.confirmed, audit.confirmed());
        assert_eq!(record.refuted, audit.refuted());
        assert_eq!(record.verdict, audit.verdict().as_str());
        // The record is self-contained: parse the wire line and render
        // from the parsed copy — byte-identical waterfall.
        let line = uarch_obs::ledger::LedgerRecord::Audit(record.clone()).to_json_line();
        let parsed = match uarch_obs::ledger::LedgerRecord::parse(&line).unwrap() {
            uarch_obs::ledger::LedgerRecord::Audit(a) => a,
            other => panic!("wrong kind: {other:?}"),
        };
        assert_eq!(render_waterfall(&parsed), render_waterfall(&record));
        let table = render_waterfall(&record);
        assert!(table.contains("audit window 3 [refuted]"), "{table}");
        assert!(table.contains("dmiss"), "{table}");
        assert!(table.contains("evidence:"), "{table}");
    }

    #[test]
    fn metrics_count_checks_and_verdicts() {
        let registry = Registry::new();
        let metrics = AuditMetrics::bind(&registry);
        let cfg = AuditConfig::default();
        let audit = audit_attribution(
            "run",
            1000,
            &costs(100, 0, 50, 100, 0),
            &[],
            &stalls(100, 0, 900, 100, 0),
            &cfg,
        );
        metrics.observe(&audit.to_record(1));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("audit.checks"), 1);
        assert_eq!(snap.counter("audit.refuted"), audit.refuted());
        assert_eq!(snap.counter("audit.skipped"), 0);
    }
}
