//! `icost-obs` — regression tracking over run ledgers.
//!
//! ```text
//! icost-obs summarize <ledger.jsonl> [--json]
//! icost-obs diff <base.jsonl> <new.jsonl> [--tolerance F] [--wall-tolerance F] [--json]
//! icost-obs bench-export <ledger.jsonl> --tag TAG [--out FILE]
//! ```
//!
//! Exit codes: `0` success / no regressions, `1` regressions found by
//! `diff`, `2` usage or I/O error.

use std::process::ExitCode;

use icost_obs_cli::{diff, LedgerSummary, Tolerance};

const USAGE: &str = "\
icost-obs — regression tracking over interaction-cost run ledgers

USAGE:
    icost-obs summarize <ledger.jsonl> [--json]
    icost-obs diff <base.jsonl> <new.jsonl> [--tolerance F] [--wall-tolerance F] [--json]
    icost-obs bench-export <ledger.jsonl> --tag TAG [--out FILE]

COMMANDS:
    summarize     Aggregate a ledger into run/job/provenance/cycle totals
    diff          Compare a candidate ledger against a baseline; exit 1
                  when a gated metric regresses beyond tolerance
    bench-export  Write the summary as BENCH_<TAG>.json (or --out FILE)

OPTIONS:
    --json             Emit JSON instead of the aligned table
    --tolerance F      Relative slack for work metrics (default 0.0;
                       0.1 allows +10% sims/cycles, -10% reuse)
    --wall-tolerance F Relative slack for wall time (default 10.0 —
                       wall clocks differ wildly across machines)
    --tag TAG          Benchmark tag for bench-export (required)
    --out FILE         Output path for bench-export (default BENCH_<TAG>.json)
";

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("icost-obs: {msg}");
    ExitCode::from(2)
}

fn load_summary(path: &str) -> Result<LedgerSummary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    LedgerSummary::from_text(&text).map_err(|e| format!("{path}: {e}"))
}

/// Pull `--flag VALUE` out of `args`, parsing the value.
fn take_opt<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str) -> Result<Option<T>, String>
where
    T::Err: std::fmt::Display,
{
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    args.remove(i);
    let raw = args.remove(i);
    raw.parse::<T>()
        .map(Some)
        .map_err(|e| format!("bad value {raw:?} for {flag}: {e}"))
}

/// Pull a bare `--flag` out of `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let command = args.remove(0);
    match command.as_str() {
        "summarize" => {
            let json = take_flag(&mut args, "--json");
            let [path] = args.as_slice() else {
                return fail("summarize takes exactly one ledger path (see --help)");
            };
            match load_summary(path) {
                Ok(s) if json => println!("{}", s.to_json()),
                Ok(s) => print!("{}", s.to_table()),
                Err(e) => return fail(e),
            }
            ExitCode::SUCCESS
        }
        "diff" => {
            let json = take_flag(&mut args, "--json");
            let mut tol = Tolerance::default();
            match take_opt::<f64>(&mut args, "--tolerance") {
                Ok(Some(t)) => tol.work = t,
                Ok(None) => {}
                Err(e) => return fail(e),
            }
            match take_opt::<f64>(&mut args, "--wall-tolerance") {
                Ok(Some(t)) => tol.wall = t,
                Ok(None) => {}
                Err(e) => return fail(e),
            }
            let [base_path, new_path] = args.as_slice() else {
                return fail("diff takes a baseline and a candidate ledger (see --help)");
            };
            let (base, new) = match (load_summary(base_path), load_summary(new_path)) {
                (Ok(b), Ok(n)) => (b, n),
                (Err(e), _) | (_, Err(e)) => return fail(e),
            };
            let report = diff(&base, &new, tol);
            if json {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.to_table());
            }
            if report.regressions() > 0 {
                eprintln!(
                    "icost-obs: {} regression(s) against {base_path}",
                    report.regressions()
                );
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        "bench-export" => {
            let tag = match take_opt::<String>(&mut args, "--tag") {
                Ok(Some(t)) => t,
                Ok(None) => return fail("bench-export requires --tag TAG"),
                Err(e) => return fail(e),
            };
            let out = match take_opt::<String>(&mut args, "--out") {
                Ok(o) => o.unwrap_or_else(|| format!("BENCH_{tag}.json")),
                Err(e) => return fail(e),
            };
            let [path] = args.as_slice() else {
                return fail("bench-export takes exactly one ledger path (see --help)");
            };
            let summary = match load_summary(path) {
                Ok(s) => s,
                Err(e) => return fail(e),
            };
            let doc = summary.to_bench_json(&tag, path);
            if let Err(e) = std::fs::write(&out, doc) {
                return fail(format!("cannot write {out}: {e}"));
            }
            eprintln!("icost-obs: wrote {out}");
            ExitCode::SUCCESS
        }
        other => fail(format!("unknown command {other:?} (see --help)")),
    }
}
