//! `icost-obs` — regression tracking over run ledgers.
//!
//! ```text
//! icost-obs summarize <ledger.jsonl> [--json]
//! icost-obs diff <base.jsonl> <new.jsonl> [--tolerance F] [--wall-tolerance F] [--json]
//! icost-obs bench-export <ledger.jsonl> --tag TAG [--out FILE] [--allow-empty]
//! icost-obs plan <ledger.jsonl> [--json]
//! icost-obs serve [--addr HOST:PORT] [--workload NAME] [--insts N] [--threads N] [--workers N]
//!                 [--token TOKEN]
//! icost-obs watch (--addr HOST:PORT | --ledger FILE) [--kinds K1,K2] [--limit N] [--token TOKEN]
//! icost-obs audit (<ledger.jsonl> | --addr HOST:PORT) [--max-refuted F] [--limit N] [--token TOKEN]
//! icost-obs flame (<trace.json> | --addr HOST:PORT [--secs N]) [--token TOKEN]
//! ```
//!
//! Exit codes: `0` success / no regressions, `1` regressions found by
//! `diff`, `2` usage or I/O error.

use std::process::ExitCode;
use std::sync::Arc;

use icost_obs_cli::{diff, LedgerSummary, Tolerance};
use uarch_serve::{ServeContext, ServeHost, Server};

const USAGE: &str = "\
icost-obs — regression tracking over interaction-cost run ledgers

USAGE:
    icost-obs summarize <ledger.jsonl> [--json]
    icost-obs diff <base.jsonl> <new.jsonl> [--tolerance F] [--wall-tolerance F] [--json]
    icost-obs bench-export <ledger.jsonl> --tag TAG [--out FILE] [--allow-empty]
    icost-obs plan <ledger.jsonl> [--json]
    icost-obs serve [--addr HOST:PORT] [--workload NAME] [--insts N]
                    [--threads N] [--workers N] [--token TOKEN]
    icost-obs watch (--addr HOST:PORT | --ledger FILE)
                    [--kinds K1,K2] [--limit N] [--token TOKEN]
    icost-obs audit (<ledger.jsonl> | --addr HOST:PORT)
                    [--max-refuted F] [--limit N] [--token TOKEN]
    icost-obs flame (<trace.json> | --addr HOST:PORT [--secs N])
                    [--token TOKEN]

COMMANDS:
    summarize     Aggregate a ledger into run/job/provenance/cycle totals
    diff          Compare a candidate ledger against a baseline; exit 1
                  when a gated metric regresses beyond tolerance
    bench-export  Write the summary as BENCH_<TAG>.json (or --out FILE);
                  exits 2 when the ledger holds no run or job records
                  unless --allow-empty is given
    plan          Inspect the mixed-fidelity planner's ledger trail:
                  answers by backend and routing reason, plus the
                  per-context graph-residual calibration replayed from
                  the ledger's calib records
    serve         Run the live telemetry server: GET /metrics (Prometheus),
                  /healthz, /readyz, /events (SSE ledger stream), and
                  POST /query (JSON cost(S) batches; backend sim|graph|auto).
                  Listens on --addr, the ICOST_SERVE_ADDR env var, or
                  127.0.0.1:7117; runs until killed. Set ICOST_LEDGER_FILE
                  to also persist the streamed records.
    watch         Tail live ledger records and render them: per-window
                  icost breakdown tables for streamed `window` records,
                  one-line summaries for everything else. --addr tails a
                  server's GET /events SSE stream (with the kinds filter
                  applied server-side); --ledger tails a JSONL ledger
                  file. Runs until killed unless --limit is given.
    audit         Render attribution-audit waterfalls (the counter-vs-
                  graph cross-validation records producers emit under
                  ICOST_AUDIT=1): per-category attributed vs counter
                  shares, signed divergence bars, and the verdict. Reads
                  a ledger file, or tails a server's audit stream with
                  --addr. With --max-refuted F, exits 1 when the fraction
                  of refuted audits exceeds F — the CI gate for
                  attribution quality.
    flame         Fold spans into flamegraph folded stacks on stdout
                  ('stack;frames self_us' lines, ready for any
                  flamegraph renderer). Reads a Chrome trace file (the
                  ICOST_TRACE_FILE output), or fetches a live server's
                  GET /profile window with --addr.

OPTIONS:
    --json             Emit JSON instead of the aligned table
    --tolerance F      Relative slack for work metrics (default 0.0;
                       0.1 allows +10% sims/cycles, -10% reuse)
    --wall-tolerance F Relative slack for wall time (default 10.0 —
                       wall clocks differ wildly across machines)
    --tag TAG          Benchmark tag for bench-export (required)
    --out FILE         Output path for bench-export (default BENCH_<TAG>.json)
    --allow-empty      bench-export: export even when the ledger holds no
                       run or job records (default: warn and exit 2)
    --addr HOST:PORT   serve listen address (port 0 picks a free port)
    --workload NAME    serve benchmark profile (default mcf)
    --insts N          serve trace length in instructions (default 20000)
    --threads N        serve simulation worker threads (default: cores)
    --workers N        serve HTTP accept-pool size (default 4)
    --token TOKEN      serve bearer token; every endpoint then requires
                       'Authorization: Bearer TOKEN' (defaults to the
                       ICOST_SERVE_TOKEN env var; empty disables auth)
    --ledger FILE      watch source: tail this JSONL ledger file
    --kinds K1,K2      watch record-kind filter (default window; 'all'
                       renders every kind)
    --limit N          watch/audit exit after rendering N records
                       (default: run until killed / end of file)
    --max-refuted F    audit gate: exit 1 when refuted/total exceeds F
                       (default: report only, never gate)
    --secs N           flame --addr: profile window in seconds (default 60)
";

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("icost-obs: {msg}");
    ExitCode::from(2)
}

fn load_summary(path: &str) -> Result<LedgerSummary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let (summary, skipped) =
        LedgerSummary::from_text_lenient(&text).map_err(|e| format!("{path}: {e}"))?;
    if skipped > 0 {
        eprintln!("icost-obs: {path}: skipped {skipped} record(s) of unknown kind");
    }
    Ok(summary)
}

/// Pull `--flag VALUE` out of `args`, parsing the value.
fn take_opt<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str) -> Result<Option<T>, String>
where
    T::Err: std::fmt::Display,
{
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    args.remove(i);
    let raw = args.remove(i);
    raw.parse::<T>()
        .map(Some)
        .map_err(|e| format!("bad value {raw:?} for {flag}: {e}"))
}

/// Pull a bare `--flag` out of `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let command = args.remove(0);
    match command.as_str() {
        "summarize" => {
            let json = take_flag(&mut args, "--json");
            let [path] = args.as_slice() else {
                return fail("summarize takes exactly one ledger path (see --help)");
            };
            match load_summary(path) {
                Ok(s) if json => println!("{}", s.to_json()),
                Ok(s) => print!("{}", s.to_table()),
                Err(e) => return fail(e),
            }
            ExitCode::SUCCESS
        }
        "diff" => {
            let json = take_flag(&mut args, "--json");
            let mut tol = Tolerance::default();
            match take_opt::<f64>(&mut args, "--tolerance") {
                Ok(Some(t)) => tol.work = t,
                Ok(None) => {}
                Err(e) => return fail(e),
            }
            match take_opt::<f64>(&mut args, "--wall-tolerance") {
                Ok(Some(t)) => tol.wall = t,
                Ok(None) => {}
                Err(e) => return fail(e),
            }
            let [base_path, new_path] = args.as_slice() else {
                return fail("diff takes a baseline and a candidate ledger (see --help)");
            };
            let (base, new) = match (load_summary(base_path), load_summary(new_path)) {
                (Ok(b), Ok(n)) => (b, n),
                (Err(e), _) | (_, Err(e)) => return fail(e),
            };
            let report = diff(&base, &new, tol);
            if json {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.to_table());
            }
            if report.regressions() > 0 {
                eprintln!(
                    "icost-obs: {} regression(s) against {base_path}",
                    report.regressions()
                );
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        "bench-export" => {
            let allow_empty = take_flag(&mut args, "--allow-empty");
            let tag = match take_opt::<String>(&mut args, "--tag") {
                Ok(Some(t)) => t,
                Ok(None) => return fail("bench-export requires --tag TAG"),
                Err(e) => return fail(e),
            };
            let out = match take_opt::<String>(&mut args, "--out") {
                Ok(o) => o.unwrap_or_else(|| format!("BENCH_{tag}.json")),
                Err(e) => return fail(e),
            };
            let [path] = args.as_slice() else {
                return fail("bench-export takes exactly one ledger path (see --help)");
            };
            let summary = match load_summary(path) {
                Ok(s) => s,
                Err(e) => return fail(e),
            };
            // An exported benchmark file with zero run headers and zero
            // job records gates nothing downstream — it is almost always
            // a mis-pointed ICOST_LEDGER_FILE. Refuse unless the caller
            // explicitly opts in.
            if summary.runs == 0 && summary.jobs == 0 {
                if allow_empty {
                    eprintln!(
                        "icost-obs: {path}: no run or job records; exporting empty \
                         summary (--allow-empty)"
                    );
                } else {
                    return fail(format!(
                        "{path}: no run or job records — refusing to export an empty \
                         benchmark summary (pass --allow-empty to override)"
                    ));
                }
            }
            let doc = summary.to_bench_json(&tag, path);
            if let Err(e) = std::fs::write(&out, doc) {
                return fail(format!("cannot write {out}: {e}"));
            }
            eprintln!("icost-obs: wrote {out}");
            ExitCode::SUCCESS
        }
        "plan" => {
            let json = take_flag(&mut args, "--json");
            let [path] = args.as_slice() else {
                return fail("plan takes exactly one ledger path (see --help)");
            };
            match plan_report(path, json) {
                Ok(out) => {
                    print!("{out}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        "serve" => {
            let addr = match take_opt::<String>(&mut args, "--addr") {
                Ok(Some(a)) => a,
                Ok(None) => std::env::var(uarch_serve::SERVE_ADDR_ENV)
                    .unwrap_or_else(|_| uarch_serve::DEFAULT_ADDR.to_string()),
                Err(e) => return fail(e),
            };
            let workload = match take_opt::<String>(&mut args, "--workload") {
                Ok(w) => w.unwrap_or_else(|| "mcf".to_string()),
                Err(e) => return fail(e),
            };
            let insts = match take_opt::<usize>(&mut args, "--insts") {
                Ok(n) => n.unwrap_or(20_000),
                Err(e) => return fail(e),
            };
            let threads = match take_opt::<usize>(&mut args, "--threads") {
                Ok(t) => t,
                Err(e) => return fail(e),
            };
            let workers = match take_opt::<usize>(&mut args, "--workers") {
                Ok(w) => w.unwrap_or(uarch_serve::DEFAULT_WORKERS),
                Err(e) => return fail(e),
            };
            let token = match take_opt::<String>(&mut args, "--token") {
                Ok(Some(t)) => Some(t),
                Ok(None) => std::env::var("ICOST_SERVE_TOKEN").ok(),
                Err(e) => return fail(e),
            };
            if !args.is_empty() {
                return fail(format!("unexpected arguments {args:?} (see --help)"));
            }
            serve(&addr, &workload, insts, threads, workers, token)
        }
        "watch" => {
            let addr = match take_opt::<String>(&mut args, "--addr") {
                Ok(a) => a,
                Err(e) => return fail(e),
            };
            let ledger = match take_opt::<String>(&mut args, "--ledger") {
                Ok(l) => l,
                Err(e) => return fail(e),
            };
            let kinds = match take_opt::<String>(&mut args, "--kinds") {
                Ok(k) => k.unwrap_or_else(|| "window".to_string()),
                Err(e) => return fail(e),
            };
            let limit = match take_opt::<u64>(&mut args, "--limit") {
                Ok(n) => n,
                Err(e) => return fail(e),
            };
            let token = match take_opt::<String>(&mut args, "--token") {
                Ok(Some(t)) => Some(t),
                Ok(None) => std::env::var("ICOST_SERVE_TOKEN").ok(),
                Err(e) => return fail(e),
            };
            if !args.is_empty() {
                return fail(format!("unexpected arguments {args:?} (see --help)"));
            }
            match (addr, ledger) {
                (Some(addr), None) => watch_sse(&addr, &kinds, limit, token),
                (None, Some(path)) => watch_ledger(&path, &kinds, limit),
                _ => fail("watch takes exactly one of --addr or --ledger (see --help)"),
            }
        }
        "audit" => {
            let addr = match take_opt::<String>(&mut args, "--addr") {
                Ok(a) => a,
                Err(e) => return fail(e),
            };
            let max_refuted = match take_opt::<f64>(&mut args, "--max-refuted") {
                Ok(m) => m,
                Err(e) => return fail(e),
            };
            let limit = match take_opt::<u64>(&mut args, "--limit") {
                Ok(n) => n,
                Err(e) => return fail(e),
            };
            let token = match take_opt::<String>(&mut args, "--token") {
                Ok(Some(t)) => Some(t),
                Ok(None) => std::env::var("ICOST_SERVE_TOKEN").ok(),
                Err(e) => return fail(e),
            };
            match (addr, args.as_slice()) {
                (Some(addr), []) => audit_sse(&addr, limit, max_refuted, token),
                (None, [path]) => audit_ledger(path, limit, max_refuted),
                _ => fail("audit takes a ledger path or --addr, not both (see --help)"),
            }
        }
        "flame" => {
            let addr = match take_opt::<String>(&mut args, "--addr") {
                Ok(a) => a,
                Err(e) => return fail(e),
            };
            let secs = match take_opt::<u64>(&mut args, "--secs") {
                Ok(n) => n.unwrap_or(60),
                Err(e) => return fail(e),
            };
            let token = match take_opt::<String>(&mut args, "--token") {
                Ok(Some(t)) => Some(t),
                Ok(None) => std::env::var("ICOST_SERVE_TOKEN").ok(),
                Err(e) => return fail(e),
            };
            match (addr, args.as_slice()) {
                (Some(addr), []) => flame_addr(&addr, secs, token),
                (None, [path]) => flame_file(path),
                _ => fail("flame takes a Chrome trace path or --addr, not both (see --help)"),
            }
        }
        other => fail(format!("unknown command {other:?} (see --help)")),
    }
}

/// `icost-obs flame <trace.json>`: fold a Chrome trace file (the
/// `ICOST_TRACE_FILE` output) into flamegraph folded stacks.
fn flame_file(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => return fail(format!("cannot read {path}: {e}")),
    };
    match uarch_obs::Profile::from_chrome_json(&text) {
        Ok(profile) => {
            print!("{}", profile.render());
            ExitCode::SUCCESS
        }
        Err(e) => fail(format!("{path}: {e}")),
    }
}

/// `icost-obs flame --addr`: fetch a live server's `GET /profile`
/// window — already folded server-side — and print it.
fn flame_addr(addr: &str, secs: u64, token: Option<String>) -> ExitCode {
    match http_get(addr, &format!("/profile?secs={secs}"), token) {
        Ok(body) => {
            print!("{body}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

/// One plain HTTP GET against a server: send the request, require a
/// 200, read the body to EOF (the server closes after each response).
fn http_get(addr: &str, path: &str, token: Option<String>) -> Result<String, String> {
    use std::io::{Read as _, Write as _};

    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(30)));
    let auth = token
        .filter(|t| !t.is_empty())
        .map_or(String::new(), |t| format!("Authorization: Bearer {t}\r\n"));
    let request = format!("GET {path} HTTP/1.1\r\nHost: flame\r\n{auth}\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("cannot send request: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read error: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response from {addr}"))?;
    if !head.starts_with("HTTP/1.1 200") {
        return Err(format!(
            "server refused {path}: {} — {}",
            head.lines().next().unwrap_or(""),
            body.trim()
        ));
    }
    Ok(body.to_string())
}

/// Parse the `--kinds` value: `all` (or empty) means no filter.
fn kinds_filter(kinds: &str) -> Option<Vec<String>> {
    if kinds == "all" {
        return None;
    }
    let kinds: Vec<String> = kinds
        .split(',')
        .filter(|k| !k.is_empty())
        .map(str::to_string)
        .collect();
    (!kinds.is_empty()).then_some(kinds)
}

/// Render one ledger JSONL `line` if it passes the kind filter;
/// returns whether a record was rendered (counted against `--limit`).
fn watch_line(line: &str, kinds: Option<&[String]>) -> bool {
    let line = line.trim();
    if line.is_empty() {
        return false;
    }
    if let Some(kinds) = kinds {
        let kind = line
            .strip_prefix("{\"kind\":\"")
            .and_then(|rest| rest.split_once('"'))
            .map(|(kind, _)| kind);
        if !kind.is_some_and(|k| kinds.iter().any(|want| want == k)) {
            return false;
        }
    }
    match uarch_obs::ledger::parse_ledger_lenient(line) {
        Ok((records, 0)) if !records.is_empty() => {
            print!("{}", icost_obs_cli::render_watch_record(&records[0]));
        }
        // Unknown or malformed kinds still surface raw — watch is a
        // tail, not a validator.
        _ => println!("{line}"),
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    true
}

/// Connect to a server's SSE endpoint and feed every `data:` payload
/// line to `on_payload`. Returns `Ok(true)` when the callback asked to
/// stop, `Ok(false)` when the server closed the stream, `Err` on
/// connection/protocol failures. Shared by `watch --addr` and
/// `audit --addr`.
fn stream_events(
    addr: &str,
    path: &str,
    token: Option<String>,
    mut on_payload: impl FnMut(&str) -> bool,
) -> Result<bool, String> {
    use std::io::{Read as _, Write as _};

    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(500)));
    let auth = token
        .filter(|t| !t.is_empty())
        .map_or(String::new(), |t| format!("Authorization: Bearer {t}\r\n"));
    let request = format!("GET {path} HTTP/1.1\r\nHost: watch\r\n{auth}\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("cannot send request: {e}"))?;
    let mut buf = String::new();
    let mut chunk = [0u8; 4096];
    // Read the response head first; anything but 200 is a hard error.
    while !buf.contains("\r\n\r\n") {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(format!("server closed during response head: {buf:?}")),
            Ok(n) => buf.push_str(&String::from_utf8_lossy(&chunk[..n])),
            Err(e) if would_block(&e) => {}
            Err(e) => return Err(format!("read error: {e}")),
        }
    }
    let head_end = buf.find("\r\n\r\n").expect("head terminator") + 4;
    let head: String = buf.drain(..head_end).collect();
    if !head.starts_with("HTTP/1.1 200") {
        return Err(format!(
            "server refused the stream: {}",
            head.lines().next().unwrap_or("")
        ));
    }
    eprintln!("icost-obs: watching {addr}{path}");
    loop {
        // Frames end with a blank line; data lines carry ledger records.
        while let Some(i) = buf.find("\n\n") {
            let frame: String = buf.drain(..i + 2).collect();
            for payload in frame.lines().filter_map(|l| l.strip_prefix("data: ")) {
                if on_payload(payload) {
                    return Ok(true);
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                eprintln!("icost-obs: event stream closed by server");
                return Ok(false);
            }
            Ok(n) => buf.push_str(&String::from_utf8_lossy(&chunk[..n])),
            Err(e) if would_block(&e) => {}
            Err(e) => return Err(format!("read error: {e}")),
        }
    }
}

/// `icost-obs watch --addr`: tail a server's `GET /events` SSE stream.
fn watch_sse(addr: &str, kinds: &str, limit: Option<u64>, token: Option<String>) -> ExitCode {
    let kinds = kinds_filter(kinds);
    let path = match &kinds {
        Some(kinds) => format!("/events?kinds={}", kinds.join(",")),
        None => "/events".to_string(),
    };
    let mut rendered = 0u64;
    // The kind filter already ran server-side, but re-check in
    // watch_line so a pre-filter server streams the same view.
    match stream_events(addr, &path, token, |payload| {
        if watch_line(payload, kinds.as_deref()) {
            rendered += 1;
            return limit.is_some_and(|n| rendered >= n);
        }
        false
    }) {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => fail(e),
    }
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// `icost-obs watch --ledger`: tail a JSONL ledger file, rendering
/// records already present and then polling for appended lines.
fn watch_ledger(path: &str, kinds: &str, limit: Option<u64>) -> ExitCode {
    use std::io::{Read as _, Seek as _};

    let kinds = kinds_filter(kinds);
    let mut pos = 0u64;
    let mut carry = String::new();
    let mut rendered = 0u64;
    let mut warned_missing = false;
    loop {
        match std::fs::File::open(path) {
            Ok(mut file) => {
                if file.seek(std::io::SeekFrom::Start(pos)).is_ok() {
                    let mut text = String::new();
                    if file.read_to_string(&mut text).is_ok() {
                        pos += text.len() as u64;
                        carry.push_str(&text);
                    }
                }
            }
            Err(_) if !warned_missing => {
                eprintln!("icost-obs: waiting for {path}");
                warned_missing = true;
            }
            Err(_) => {}
        }
        while let Some(i) = carry.find('\n') {
            let line: String = carry.drain(..=i).collect();
            if watch_line(&line, kinds.as_deref()) {
                rendered += 1;
                if limit.is_some_and(|n| rendered >= n) {
                    return ExitCode::SUCCESS;
                }
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(250));
    }
}

/// Parse one JSONL line as an audit record, if that's what it is.
/// Other kinds (and unknown/malformed lines) return `None` — the audit
/// view tails mixed ledgers and streams without failing on them.
fn parse_audit_line(line: &str) -> Option<uarch_obs::ledger::AuditRecord> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    match uarch_obs::ledger::parse_ledger_lenient(line) {
        Ok((records, _)) => records.into_iter().find_map(|r| match r {
            uarch_obs::ledger::LedgerRecord::Audit(a) => Some(a),
            _ => None,
        }),
        Err(_) => None,
    }
}

/// Final report + optional CI gate shared by both `audit` sources:
/// exit 1 when the refuted fraction exceeds `--max-refuted`.
fn audit_gate(total: u64, refuted: u64, max_refuted: Option<f64>) -> ExitCode {
    let rate = if total == 0 {
        0.0
    } else {
        refuted as f64 / total as f64
    };
    eprintln!("icost-obs: {total} audit record(s), {refuted} refuted (rate {rate:.3})");
    match max_refuted {
        Some(max) if rate > max => {
            eprintln!("icost-obs: refuted rate {rate:.3} exceeds --max-refuted {max}");
            ExitCode::FAILURE
        }
        _ => ExitCode::SUCCESS,
    }
}

/// `icost-obs audit <ledger.jsonl>`: render every audit record's
/// waterfall, then report the refuted rate (and gate on it).
fn audit_ledger(path: &str, limit: Option<u64>, max_refuted: Option<f64>) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => return fail(format!("cannot read {path}: {e}")),
    };
    let (records, skipped) = match uarch_obs::ledger::parse_ledger_lenient(&text) {
        Ok(parsed) => parsed,
        Err(e) => return fail(format!("{path}: {e}")),
    };
    if skipped > 0 {
        eprintln!("icost-obs: {path}: skipped {skipped} record(s) of unknown kind");
    }
    let mut total = 0u64;
    let mut refuted = 0u64;
    for record in &records {
        if let uarch_obs::ledger::LedgerRecord::Audit(a) = record {
            if limit.is_some_and(|n| total >= n) {
                break;
            }
            print!("{}", uarch_audit::render_waterfall(a));
            total += 1;
            refuted += u64::from(a.verdict == "refuted");
        }
    }
    if total == 0 {
        eprintln!("icost-obs: {path}: no audit records (producers emit them under ICOST_AUDIT=1)");
    }
    audit_gate(total, refuted, max_refuted)
}

/// `icost-obs audit --addr`: tail a server's audit stream, rendering
/// waterfalls live; applies the gate when the stream ends or --limit is
/// reached.
fn audit_sse(
    addr: &str,
    limit: Option<u64>,
    max_refuted: Option<f64>,
    token: Option<String>,
) -> ExitCode {
    let mut total = 0u64;
    let mut refuted = 0u64;
    let result = stream_events(addr, "/events?kinds=audit", token, |payload| {
        let Some(a) = parse_audit_line(payload) else {
            return false;
        };
        print!("{}", uarch_audit::render_waterfall(&a));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        total += 1;
        refuted += u64::from(a.verdict == "refuted");
        limit.is_some_and(|n| total >= n)
    });
    match result {
        Ok(_) => audit_gate(total, refuted, max_refuted),
        Err(e) => fail(e),
    }
}

/// Build the serving host for one generated workload and block forever
/// (the server runs until the process is killed).
fn serve(
    addr: &str,
    workload: &str,
    insts: usize,
    threads: Option<usize>,
    workers: usize,
    token: Option<String>,
) -> ExitCode {
    let Some(profile) = uarch_workloads::BenchProfile::by_name(workload) else {
        return fail(format!("unknown workload {workload:?}"));
    };
    let _guard = uarch_obs::flush_guard();
    let w = uarch_workloads::generate(profile, insts, 2003);
    let mut ctx = ServeContext::new(
        w.name.clone(),
        uarch_trace::MachineConfig::table6(),
        w.trace,
    );
    ctx.warm_data = w.warm_data;
    ctx.warm_code = w.warm_code;
    let mut runner = uarch_runner::Runner::new();
    if let Some(threads) = threads {
        runner = runner.with_threads(threads);
    }
    eprintln!("icost-obs: building dependence graph for {workload} ({insts} insts)");
    if token.is_some() {
        eprintln!("icost-obs: bearer-token auth enabled");
    }
    let host = Arc::new(ServeHost::new(runner, ctx).with_token(token));
    let server = match Server::start(host.clone(), addr, workers) {
        Ok(server) => server,
        Err(e) => return fail(format!("cannot bind {addr}: {e}")),
    };
    // Build/runtime identity goes to stderr: stdout's first line must
    // stay the machine-readable address below.
    eprintln!("icost-obs: {}", host.startup_info());
    // Machine-readable startup line: tests and scripts parse the bound
    // address from stdout (port 0 resolves to the actual port).
    println!("listening on {}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    loop {
        std::thread::park();
    }
}

/// `icost-obs plan`: aggregate the planner's ledger trail — answers by
/// backend and routing reason, plus the per-context graph-residual
/// calibration replayed from `calib` records.
fn plan_report(path: &str, json: bool) -> Result<String, String> {
    use std::collections::BTreeMap;
    use uarch_obs::json::Value;
    use uarch_obs::ledger::LedgerRecord;

    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let (records, skipped) =
        uarch_obs::ledger::parse_ledger_lenient(&text).map_err(|e| format!("{path}: {e}"))?;
    if skipped > 0 {
        eprintln!("icost-obs: {path}: skipped {skipped} record(s) of unknown kind");
    }
    let mut backends: BTreeMap<String, u64> = BTreeMap::new();
    let mut reasons: BTreeMap<String, u64> = BTreeMap::new();
    let mut answers = 0u64;
    let mut confidence_pm_sum = 0u64;
    for record in &records {
        if let LedgerRecord::Plan(p) = record {
            answers += 1;
            confidence_pm_sum += p.confidence_pm;
            *backends.entry(p.backend.clone()).or_insert(0) += 1;
            *reasons.entry(p.reason.clone()).or_insert(0) += 1;
        }
    }
    let calibrator = uarch_plan::Calibrator::new();
    let calibs = calibrator.replay(&records) as u64;
    let cfg = uarch_plan::PlanConfig::default();
    let contexts = calibrator.snapshot(&cfg);
    let mean_confidence = (answers > 0).then(|| confidence_pm_sum as f64 / answers as f64 / 1000.0);

    if json {
        let count_obj = |m: &BTreeMap<String, u64>| {
            Value::Obj(
                m.iter()
                    .map(|(k, &v)| (k.clone(), Value::Num(v as f64)))
                    .collect(),
            )
        };
        let mut obj = BTreeMap::new();
        obj.insert("answers".to_string(), Value::Num(answers as f64));
        obj.insert(
            "mean_confidence".to_string(),
            mean_confidence.map_or(Value::Null, Value::Num),
        );
        obj.insert("backends".to_string(), count_obj(&backends));
        obj.insert("reasons".to_string(), count_obj(&reasons));
        obj.insert("calib_records".to_string(), Value::Num(calibs as f64));
        obj.insert(
            "contexts".to_string(),
            Value::Arr(
                contexts
                    .iter()
                    .map(|c| {
                        let mut m = BTreeMap::new();
                        m.insert("sim_ctx".to_string(), Value::Str(c.sim_ctx.clone()));
                        m.insert("graph_ctx".to_string(), Value::Str(c.graph_ctx.clone()));
                        m.insert("samples".to_string(), Value::Num(c.samples as f64));
                        m.insert("p50".to_string(), Value::Num(c.p50 as f64));
                        m.insert("p95".to_string(), Value::Num(c.p95 as f64));
                        m.insert("max".to_string(), Value::Num(c.max as f64));
                        m.insert(
                            "tolerance".to_string(),
                            c.tolerance.map_or(Value::Null, |t| Value::Num(t as f64)),
                        );
                        Value::Obj(m)
                    })
                    .collect(),
            ),
        );
        let mut out = Value::Obj(obj).render();
        out.push('\n');
        return Ok(out);
    }

    let mut out = String::new();
    let mut row = |k: &str, v: String| out.push_str(&format!("  {k:<18} {v:>16}\n"));
    row("plan_answers", answers.to_string());
    match mean_confidence {
        Some(c) => row("mean_confidence", format!("{c:.3}")),
        None => row("mean_confidence", "-".into()),
    }
    for (backend, n) in &backends {
        row(&format!("  via {backend}"), n.to_string());
    }
    for (reason, n) in &reasons {
        row(&format!("  reason {reason}"), n.to_string());
    }
    row("calib_records", calibs.to_string());
    if contexts.is_empty() {
        out.push_str("  calibration: no calib records (planner uncalibrated)\n");
    } else {
        out.push_str("  calibration by context pair:\n");
        for c in &contexts {
            let tol = c
                .tolerance
                .map_or("uncalibrated".to_string(), |t| t.to_string());
            out.push_str(&format!(
                "    sim={} graph={} samples={} p50={} p95={} max={} tolerance={}\n",
                c.sim_ctx, c.graph_ctx, c.samples, c.p50, c.p95, c.max, tol
            ));
        }
    }
    Ok(out)
}
