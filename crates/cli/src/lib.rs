//! Library core of the `icost-obs` regression CLI: aggregate a run
//! ledger (the JSONL stream `uarch-runner` appends under
//! `ICOST_LEDGER_FILE`) into a [`LedgerSummary`], compare two summaries
//! with [`diff`], and export a summary as a benchmark-baseline JSON
//! document.
//!
//! Everything here is deterministic over the ledger *content*: object
//! keys render sorted, job records aggregate the same way regardless of
//! thread interleaving, and timestamps never enter the summary — so two
//! ledgers of the same run always summarize and diff identically.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};

use uarch_obs::json::Value;
use uarch_obs::ledger::{parse_ledger, parse_ledger_lenient, LedgerRecord, Provenance};

/// Aggregated view of one ledger file: run/job counts, provenance
/// split, total simulated cycles and wall time, stall taxonomy sums,
/// and the per-set result hashes used for cross-run identity checks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LedgerSummary {
    /// `run` header records seen.
    pub runs: u64,
    /// Queries declared across all run headers.
    pub queries: u64,
    /// Job records (answered simulation jobs) seen.
    pub jobs: u64,
    /// Jobs answered by actually simulating (`provenance: computed`).
    pub computed: u64,
    /// Jobs answered from the in-memory cache.
    pub memory_hits: u64,
    /// Jobs answered from the disk cache.
    pub disk_hits: u64,
    /// Simulated cycles summed over computed jobs.
    pub cycles: u64,
    /// Wall microseconds summed over every job record.
    pub wall_us: u64,
    /// Worker-thread budget(s) seen in run headers (machine-dependent;
    /// informational only, never gated on).
    pub threads: BTreeSet<u64>,
    /// Simulation-context fingerprints seen in run headers.
    pub ctxs: BTreeSet<String>,
    /// Stall cycles by taxonomy row, summed over computed jobs.
    pub stalls: BTreeMap<String, u64>,
    /// Result hashes by idealization set (normally one hash per set; a
    /// set maps to several only when the ledger mixes contexts).
    pub hashes: BTreeMap<String, BTreeSet<String>>,
    /// Calibration records (paired graph/sim observations) seen.
    pub calibs: u64,
    /// Planner answer records seen.
    pub plans: u64,
    /// Planner answers by serving backend (`cache`/`graph`/`sim`).
    pub plan_backends: BTreeMap<String, u64>,
    /// Streaming-ingest window records seen.
    pub windows: u64,
    /// Instructions covered by those windows (sum of `end - start`).
    pub window_insts: u64,
    /// Per-batch report records seen.
    pub reports: u64,
    /// Per-batch wall times (expand + sim) from report records, in
    /// microseconds and ledger order — the query-latency distribution
    /// `summarize` reports percentiles over.
    pub report_walls: Vec<u64>,
    /// Attribution audit records seen.
    pub audits: u64,
    /// Audit records whose overall verdict was `confirmed`.
    pub audit_confirmed: u64,
    /// Audit records whose overall verdict was `refuted`.
    pub audit_refuted: u64,
    /// Audit records whose overall verdict was `unmodeled` (nothing
    /// checkable above the noise floor).
    pub audit_unmodeled: u64,
}

impl LedgerSummary {
    /// Summarize parsed ledger records.
    pub fn from_records(records: &[LedgerRecord]) -> LedgerSummary {
        let mut s = LedgerSummary::default();
        for record in records {
            match record {
                LedgerRecord::Run(h) => {
                    s.runs += 1;
                    s.queries += h.queries;
                    s.threads.insert(h.threads);
                    s.ctxs.insert(h.ctx.clone());
                }
                LedgerRecord::Job(j) => {
                    s.jobs += 1;
                    s.wall_us += j.wall_us;
                    match j.provenance {
                        Provenance::Computed => {
                            s.computed += 1;
                            s.cycles += j.cycles;
                            for (name, v) in &j.stalls {
                                *s.stalls.entry(name.clone()).or_insert(0) += v;
                            }
                        }
                        Provenance::Memory => s.memory_hits += 1,
                        Provenance::Disk => s.disk_hits += 1,
                    }
                    s.hashes
                        .entry(j.set.clone())
                        .or_default()
                        .insert(j.hash.clone());
                }
                LedgerRecord::Calib(_) => s.calibs += 1,
                LedgerRecord::Plan(p) => {
                    s.plans += 1;
                    *s.plan_backends.entry(p.backend.clone()).or_insert(0) += 1;
                }
                LedgerRecord::Window(w) => {
                    s.windows += 1;
                    s.window_insts += w.end.saturating_sub(w.start);
                }
                LedgerRecord::Report(r) => {
                    s.reports += 1;
                    s.report_walls.push(r.expand_us + r.sim_us);
                }
                LedgerRecord::Audit(a) => {
                    s.audits += 1;
                    match a.verdict.as_str() {
                        "confirmed" => s.audit_confirmed += 1,
                        "refuted" => s.audit_refuted += 1,
                        _ => s.audit_unmodeled += 1,
                    }
                }
            }
        }
        s
    }

    /// Parse ledger text (JSONL) and summarize it. Strict: any record
    /// kind this build does not know is an error.
    pub fn from_text(text: &str) -> Result<LedgerSummary, String> {
        Ok(LedgerSummary::from_records(&parse_ledger(text)?))
    }

    /// Like [`LedgerSummary::from_text`], but record kinds from newer
    /// builds are skipped (and counted) instead of failing the whole
    /// file — so `summarize`/`diff` keep working across version skew.
    /// Malformed JSON still errors.
    pub fn from_text_lenient(text: &str) -> Result<(LedgerSummary, u64), String> {
        let (records, skipped) = parse_ledger_lenient(text)?;
        Ok((LedgerSummary::from_records(&records), skipped))
    }

    /// Fraction of audit records refuted, in `[0, 1]`; `None` when the
    /// ledger carries no audit records. This is what the
    /// `icost-obs audit --max-refuted` gate compares against.
    pub fn audit_refuted_rate(&self) -> Option<f64> {
        (self.audits > 0).then(|| self.audit_refuted as f64 / self.audits as f64)
    }

    /// Nearest-rank `(p50, p95, p99)` of per-batch query wall time
    /// (expand + sim microseconds) over `report` records; `None` when
    /// the ledger carries none.
    pub fn report_wall_percentiles(&self) -> Option<(u64, u64, u64)> {
        if self.report_walls.is_empty() {
            return None;
        }
        let mut sorted = self.report_walls.clone();
        sorted.sort_unstable();
        let pick = |q: f64| {
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
            sorted[rank - 1]
        };
        Some((pick(0.50), pick(0.95), pick(0.99)))
    }

    /// Percentage of jobs answered without simulating, in `[0, 100]`;
    /// `None` for an empty ledger.
    pub fn reuse_pct(&self) -> Option<f64> {
        if self.jobs == 0 {
            return None;
        }
        Some(100.0 * (self.memory_hits + self.disk_hits) as f64 / self.jobs as f64)
    }

    /// The gateable numeric metrics, in stable order. `wall_us` is the
    /// only one compared under the separate wall tolerance.
    pub fn metrics(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("runs", self.runs as f64),
            ("queries", self.queries as f64),
            ("jobs", self.jobs as f64),
            ("sims_computed", self.computed as f64),
            ("memory_hits", self.memory_hits as f64),
            ("disk_hits", self.disk_hits as f64),
            ("cycles", self.cycles as f64),
            ("wall_us", self.wall_us as f64),
            ("reuse_pct", self.reuse_pct().unwrap_or(0.0)),
        ]
    }

    /// Render as an aligned two-column table (plus stall rows when any
    /// were recorded).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let mut row = |k: &str, v: String| out.push_str(&format!("  {k:<18} {v:>16}\n"));
        for (name, v) in self.metrics() {
            if name == "reuse_pct" {
                match self.reuse_pct() {
                    Some(p) => row(name, format!("{p:.1}%")),
                    None => row(name, "-".into()),
                }
            } else {
                row(name, fmt_num(v));
            }
        }
        row("contexts", self.ctxs.len().to_string());
        let threads: Vec<String> = self.threads.iter().map(u64::to_string).collect();
        row("threads", threads.join(","));
        if self.calibs > 0 {
            row("calib_records", self.calibs.to_string());
        }
        if self.plans > 0 {
            row("plan_answers", self.plans.to_string());
            for (backend, n) in &self.plan_backends {
                row(&format!("  via {backend}"), n.to_string());
            }
        }
        if self.windows > 0 {
            row("window_records", self.windows.to_string());
            row("window_insts", self.window_insts.to_string());
        }
        if self.reports > 0 {
            row("report_records", self.reports.to_string());
            if let Some((p50, p95, p99)) = self.report_wall_percentiles() {
                row("  wall_p50_us", p50.to_string());
                row("  wall_p95_us", p95.to_string());
                row("  wall_p99_us", p99.to_string());
            }
        }
        if self.audits > 0 {
            row("audit_records", self.audits.to_string());
            row("  confirmed", self.audit_confirmed.to_string());
            row("  refuted", self.audit_refuted.to_string());
            row("  unmodeled", self.audit_unmodeled.to_string());
        }
        if !self.stalls.is_empty() {
            out.push_str("  stall cycles by cause:\n");
            for (name, v) in &self.stalls {
                out.push_str(&format!("    {name:<20} {v:>12}\n"));
            }
        }
        out
    }

    /// The summary as a JSON value (sorted keys, deterministic render).
    pub fn to_value(&self) -> Value {
        let mut obj = BTreeMap::new();
        for (name, v) in self.metrics() {
            obj.insert(name.to_string(), Value::Num(v));
        }
        obj.insert(
            "ctxs".into(),
            Value::Arr(self.ctxs.iter().cloned().map(Value::Str).collect()),
        );
        obj.insert(
            "threads".into(),
            Value::Arr(self.threads.iter().map(|&t| Value::Num(t as f64)).collect()),
        );
        obj.insert(
            "stalls".into(),
            Value::Obj(
                self.stalls
                    .iter()
                    .map(|(k, &v)| (k.clone(), Value::Num(v as f64)))
                    .collect(),
            ),
        );
        obj.insert("calib_records".into(), Value::Num(self.calibs as f64));
        obj.insert("plan_answers".into(), Value::Num(self.plans as f64));
        obj.insert("window_records".into(), Value::Num(self.windows as f64));
        obj.insert("window_insts".into(), Value::Num(self.window_insts as f64));
        obj.insert("report_records".into(), Value::Num(self.reports as f64));
        if let Some((p50, p95, p99)) = self.report_wall_percentiles() {
            obj.insert("report_wall_p50_us".into(), Value::Num(p50 as f64));
            obj.insert("report_wall_p95_us".into(), Value::Num(p95 as f64));
            obj.insert("report_wall_p99_us".into(), Value::Num(p99 as f64));
        }
        obj.insert("audit_records".into(), Value::Num(self.audits as f64));
        obj.insert(
            "audit_confirmed".into(),
            Value::Num(self.audit_confirmed as f64),
        );
        obj.insert(
            "audit_refuted".into(),
            Value::Num(self.audit_refuted as f64),
        );
        obj.insert(
            "audit_unmodeled".into(),
            Value::Num(self.audit_unmodeled as f64),
        );
        obj.insert(
            "plan_backends".into(),
            Value::Obj(
                self.plan_backends
                    .iter()
                    .map(|(k, &v)| (k.clone(), Value::Num(v as f64)))
                    .collect(),
            ),
        );
        Value::Obj(obj)
    }

    /// Render as compact JSON.
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }

    /// Render as a benchmark-baseline document (`BENCH_<tag>.json`
    /// convention): the summary under a tag and source label.
    /// Timestamps are deliberately absent so re-exports of the same
    /// ledger are byte-identical.
    pub fn to_bench_json(&self, tag: &str, source: &str) -> String {
        let mut obj = BTreeMap::new();
        obj.insert("tag".into(), Value::Str(tag.into()));
        obj.insert("source".into(), Value::Str(source.into()));
        obj.insert("summary".into(), self.to_value());
        let mut out = Value::Obj(obj).render();
        out.push('\n');
        out
    }
}

/// Table-friendly number: integers render bare, fractions to 2 places.
fn fmt_num(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

/// One compared metric in a [`DiffReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name (see [`LedgerSummary::metrics`]).
    pub name: &'static str,
    /// Baseline value.
    pub base: f64,
    /// Candidate value.
    pub new: f64,
    /// Whether this delta exceeds its tolerance in the bad direction.
    pub regression: bool,
    /// Whether the metric is gated at all (`false` = informational).
    pub gated: bool,
}

impl MetricDelta {
    /// Relative change `new/base - 1`, or `None` when the baseline is 0.
    pub fn rel_change(&self) -> Option<f64> {
        (self.base != 0.0).then(|| self.new / self.base - 1.0)
    }
}

/// Result of comparing a candidate ledger against a baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Per-metric deltas, in [`LedgerSummary::metrics`] order.
    pub deltas: Vec<MetricDelta>,
    /// Sets whose result hashes diverge between the two ledgers
    /// (checked only when both ledgers cover the same contexts —
    /// different contexts legitimately hash differently).
    pub hash_mismatches: Vec<String>,
    /// Whether the context sets matched (enabling the hash check).
    pub ctxs_match: bool,
}

impl DiffReport {
    /// Count of regressed metrics plus hash mismatches.
    pub fn regressions(&self) -> usize {
        self.deltas.iter().filter(|d| d.regression).count() + self.hash_mismatches.len()
    }

    /// Human-readable comparison table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  {:<14} {:>14} {:>14} {:>9}  {}\n",
            "metric", "base", "new", "change", "verdict"
        ));
        for d in &self.deltas {
            let change = match d.rel_change() {
                Some(c) => format!("{:+.1}%", 100.0 * c),
                None if d.new == 0.0 => "=".into(),
                None => "new".into(),
            };
            let verdict = if d.regression {
                "REGRESSION"
            } else if !d.gated {
                "info"
            } else {
                "ok"
            };
            out.push_str(&format!(
                "  {:<14} {:>14} {:>14} {:>9}  {}\n",
                d.name,
                fmt_num(d.base),
                fmt_num(d.new),
                change,
                verdict
            ));
        }
        if self.ctxs_match {
            if self.hash_mismatches.is_empty() {
                out.push_str("  result hashes: all matching sets agree\n");
            } else {
                for set in &self.hash_mismatches {
                    out.push_str(&format!(
                        "  result hash MISMATCH for set {set} (same context, different result)\n"
                    ));
                }
            }
        } else {
            out.push_str("  result hashes: skipped (different simulation contexts)\n");
        }
        out
    }

    /// The diff as JSON (sorted keys, deterministic).
    pub fn to_json(&self) -> String {
        let mut obj = BTreeMap::new();
        let mut deltas = BTreeMap::new();
        for d in &self.deltas {
            let mut m = BTreeMap::new();
            m.insert("base".to_string(), Value::Num(d.base));
            m.insert("new".to_string(), Value::Num(d.new));
            m.insert("regression".to_string(), Value::Bool(d.regression));
            m.insert("gated".to_string(), Value::Bool(d.gated));
            deltas.insert(d.name.to_string(), Value::Obj(m));
        }
        obj.insert("deltas".to_string(), Value::Obj(deltas));
        obj.insert(
            "hash_mismatches".to_string(),
            Value::Arr(
                self.hash_mismatches
                    .iter()
                    .cloned()
                    .map(Value::Str)
                    .collect(),
            ),
        );
        obj.insert("ctxs_match".to_string(), Value::Bool(self.ctxs_match));
        obj.insert(
            "regressions".to_string(),
            Value::Num(self.regressions() as f64),
        );
        Value::Obj(obj).render()
    }
}

/// Tolerances for [`diff`], as relative fractions (`0.1` = 10% slack).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Slack for work metrics (`sims_computed`, `cycles`, `reuse_pct`).
    pub work: f64,
    /// Slack for `wall_us` — wall time crosses machines in CI, so this
    /// is typically much larger than `work`.
    pub wall: f64,
}

impl Default for Tolerance {
    fn default() -> Tolerance {
        Tolerance {
            work: 0.0,
            wall: 10.0,
        }
    }
}

/// Compare `new` against `base`.
///
/// Gated metrics and their bad directions: `sims_computed` up,
/// `cycles` up, `wall_us` up (under the wall tolerance), `reuse_pct`
/// down. Everything else (`runs`, `queries`, `jobs`, hit counts) is
/// reported for context but never regresses on its own — batch shape
/// legitimately changes when the workload under test changes.
/// Result hashes are compared per set when both ledgers cover the same
/// simulation contexts; a divergent hash there means the same
/// idealization produced a different result, which is always a
/// regression.
pub fn diff(base: &LedgerSummary, new: &LedgerSummary, tol: Tolerance) -> DiffReport {
    let base_metrics = base.metrics();
    let new_metrics = new.metrics();
    let mut deltas = Vec::with_capacity(base_metrics.len());
    for ((name, b), (_, n)) in base_metrics.into_iter().zip(new_metrics) {
        let (gated, regression) = match name {
            "sims_computed" | "cycles" => (true, n > b * (1.0 + tol.work) + 1e-9),
            "wall_us" => (true, n > b * (1.0 + tol.wall) + 1e-9),
            "reuse_pct" => (true, n < b * (1.0 - tol.work) - 1e-9),
            _ => (false, false),
        };
        deltas.push(MetricDelta {
            name,
            base: b,
            new: n,
            regression,
            gated,
        });
    }
    let ctxs_match = !base.ctxs.is_empty() && base.ctxs == new.ctxs;
    let mut hash_mismatches = Vec::new();
    if ctxs_match {
        for (set, base_hashes) in &base.hashes {
            if let Some(new_hashes) = new.hashes.get(set) {
                if base_hashes.is_disjoint(new_hashes) {
                    hash_mismatches.push(set.clone());
                }
            }
        }
    }
    DiffReport {
        deltas,
        hash_mismatches,
        ctxs_match,
    }
}

/// Render one ledger record as the `icost-obs watch` console form:
/// `window` records get a per-window breakdown table (singleton costs
/// in [`EventClass::ALL`] wire order, then the kept pairwise
/// interactions), `report` records a one-line run summary, and every
/// other kind a compact one-liner naming the record.
pub fn render_watch_record(record: &LedgerRecord) -> String {
    match record {
        LedgerRecord::Window(w) => {
            let mut out = format!(
                "window {:>4}  insts [{},{})  baseline {} cyc  lag {}  eval {}us\n  cost  ",
                w.window,
                w.start,
                w.end,
                w.baseline,
                w.lag,
                w.eval_us,
            );
            // Wire order, not BTreeMap order: the breakdown reads the
            // same way the paper's tables do.
            let by_wire = uarch_trace::EventClass::ALL
                .iter()
                .filter_map(|c| w.costs.get(c.name()).map(|v| (c.name(), *v)));
            out.push_str(
                &by_wire
                    .map(|(name, v)| format!("{name}={v}"))
                    .collect::<Vec<_>>()
                    .join(" "),
            );
            out.push('\n');
            if w.pairs.is_empty() {
                out.push_str("  icost (no nonzero pairwise interactions)\n");
            } else {
                let mut pairs: Vec<(&String, &i64)> = w.pairs.iter().collect();
                pairs.sort_by_key(|(_, v)| std::cmp::Reverse(v.abs()));
                out.push_str("  icost ");
                out.push_str(
                    &pairs
                        .iter()
                        .map(|(set, v)| format!("{set}={v:+}"))
                        .collect::<Vec<_>>()
                        .join(" "),
                );
                out.push('\n');
            }
            out
        }
        LedgerRecord::Report(r) => format!(
            "report run {}  queries {}  jobs {} ({} deduped)  cache {}  disk {}  sims {}  {} cyc / {} insts  expand {}us  sim {}us\n",
            r.run,
            r.queries,
            r.jobs,
            r.deduped,
            r.cache_hits,
            r.disk_hits,
            r.sims_run,
            r.cycles,
            r.insts,
            r.expand_us,
            r.sim_us,
        ),
        LedgerRecord::Run(h) => format!(
            "run {}  ctx {}  {} queries  {} threads  {} insts\n",
            h.run, h.ctx, h.queries, h.threads, h.insts
        ),
        LedgerRecord::Job(j) => format!(
            "job run {}  set {}  {}  {} cyc\n",
            j.run,
            j.set,
            j.provenance.as_str(),
            j.cycles
        ),
        LedgerRecord::Calib(c) => format!(
            "calib set {}  graph {}  sim {}  residual {}\n",
            c.set,
            c.graph_cost,
            c.sim_cost,
            c.graph_cost - c.sim_cost
        ),
        LedgerRecord::Plan(p) => format!(
            "plan run {}  {}  via {}  reason {}\n",
            p.run, p.query, p.backend, p.reason
        ),
        LedgerRecord::Audit(a) => uarch_audit::render_waterfall(a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_obs::ledger::{JobRecord, RunHeader};

    fn job(run: u64, set: &str, provenance: Provenance, cycles: u64, hash: &str) -> LedgerRecord {
        LedgerRecord::Job(JobRecord {
            run,
            set: set.into(),
            provenance,
            cycles,
            wall_us: 10,
            hash: hash.into(),
            stalls: BTreeMap::new(),
            trace: String::new(),
        })
    }

    fn header(run: u64, ctx: &str) -> LedgerRecord {
        LedgerRecord::Run(RunHeader {
            run,
            ctx: ctx.into(),
            queries: 2,
            threads: 8,
            insts: 100,
            ts_ms: 0,
            trace: String::new(),
        })
    }

    fn sample() -> LedgerSummary {
        LedgerSummary::from_records(&[
            header(1, "ctx-a"),
            job(1, "(none)", Provenance::Computed, 100, "h0"),
            job(1, "dmiss", Provenance::Computed, 80, "h1"),
            job(1, "dmiss", Provenance::Memory, 80, "h1"),
            job(1, "win", Provenance::Disk, 90, "h2"),
        ])
    }

    #[test]
    fn summary_aggregates_by_provenance() {
        let s = sample();
        assert_eq!(s.runs, 1);
        assert_eq!(s.queries, 2);
        assert_eq!(s.jobs, 4);
        assert_eq!(s.computed, 2);
        assert_eq!(s.memory_hits, 1);
        assert_eq!(s.disk_hits, 1);
        assert_eq!(s.cycles, 180, "cycles sum over computed jobs only");
        assert_eq!(s.wall_us, 40);
        assert_eq!(s.reuse_pct(), Some(50.0));
        assert_eq!(s.hashes["dmiss"].len(), 1);
    }

    #[test]
    fn summary_json_is_valid_and_sorted() {
        let s = sample();
        let doc = uarch_obs::json::parse(&s.to_json()).expect("valid JSON");
        assert_eq!(doc.get("jobs").and_then(Value::as_num), Some(4.0));
        assert_eq!(s.to_json(), s.to_json(), "deterministic render");
        let bench = s.to_bench_json("PR3", "ledger.jsonl");
        let doc = uarch_obs::json::parse(&bench).expect("bench JSON valid");
        assert_eq!(doc.get("tag").and_then(Value::as_str), Some("PR3"));
        assert_eq!(
            doc.get("summary")
                .and_then(|v| v.get("cycles"))
                .and_then(Value::as_num),
            Some(180.0)
        );
    }

    #[test]
    fn report_wall_percentiles_use_nearest_rank() {
        fn report(expand_us: u64, sim_us: u64) -> LedgerRecord {
            LedgerRecord::Report(uarch_obs::ledger::ReportRecord {
                run: 1,
                queries: 1,
                jobs: 1,
                deduped: 0,
                cache_hits: 0,
                disk_hits: 0,
                sims_run: 1,
                cycles: 10,
                insts: 10,
                threads: 1,
                expand_us,
                sim_us,
                skipped: 0,
                trace: String::new(),
            })
        }
        assert_eq!(sample().report_wall_percentiles(), None);
        // Walls 10,20,...,100: nearest-rank p50 is the 5th value.
        let records: Vec<LedgerRecord> = (1..=10).map(|i| report(i * 10, 0)).collect();
        let s = LedgerSummary::from_records(&records);
        assert_eq!(s.report_wall_percentiles(), Some((50, 100, 100)));
        // A single sample is every percentile, and expand+sim sum.
        let s = LedgerSummary::from_records(&[report(30, 12)]);
        assert_eq!(s.report_wall_percentiles(), Some((42, 42, 42)));
        let doc = uarch_obs::json::parse(&s.to_json()).expect("valid JSON");
        assert_eq!(
            doc.get("report_wall_p95_us").and_then(Value::as_num),
            Some(42.0)
        );
        assert!(s.to_table().contains("wall_p99_us"));
    }

    #[test]
    fn self_diff_is_clean() {
        let s = sample();
        let d = diff(&s, &s, Tolerance::default());
        assert_eq!(d.regressions(), 0, "{}", d.to_table());
        assert!(d.ctxs_match);
        assert!(uarch_obs::json::parse(&d.to_json()).is_ok());
    }

    #[test]
    fn diff_flags_bad_directions_and_respects_tolerance() {
        let base = sample();
        let worse = LedgerSummary {
            computed: 4,
            cycles: 400,
            ..base.clone()
        };
        let d = diff(&base, &worse, Tolerance::default());
        let regressed: Vec<_> = d
            .deltas
            .iter()
            .filter(|m| m.regression)
            .map(|m| m.name)
            .collect();
        assert!(regressed.contains(&"sims_computed"));
        assert!(regressed.contains(&"cycles"));
        // Generous tolerance forgives the same deltas.
        let lax = Tolerance {
            work: 2.0,
            wall: 10.0,
        };
        assert_eq!(diff(&base, &worse, lax).regressions(), 0);
        // Better-direction movement never regresses.
        let better = LedgerSummary {
            computed: 1,
            cycles: 90,
            ..base.clone()
        };
        assert_eq!(diff(&base, &better, Tolerance::default()).regressions(), 0);
    }

    #[test]
    fn hash_mismatch_is_a_regression_only_within_matching_ctxs() {
        let base = sample();
        let mut altered = LedgerSummary::from_records(&[
            header(1, "ctx-a"),
            job(1, "(none)", Provenance::Computed, 100, "h0"),
            job(1, "dmiss", Provenance::Computed, 80, "DIFFERENT"),
            job(1, "dmiss", Provenance::Memory, 80, "DIFFERENT"),
            job(1, "win", Provenance::Disk, 90, "h2"),
        ]);
        let d = diff(&base, &altered, Tolerance::default());
        assert_eq!(d.hash_mismatches, vec!["dmiss".to_string()]);
        assert_eq!(d.regressions(), 1);
        // Different context: hashes legitimately differ, no gate.
        altered.ctxs = ["ctx-b".to_string()].into_iter().collect();
        let d = diff(&base, &altered, Tolerance::default());
        assert!(!d.ctxs_match);
        assert!(d.hash_mismatches.is_empty());
        assert_eq!(d.regressions(), 0);
    }

    #[test]
    fn from_text_reports_parse_errors() {
        assert!(LedgerSummary::from_text("not json\n").is_err());
        let s = LedgerSummary::from_text("").unwrap();
        assert_eq!(s.jobs, 0);
        assert_eq!(s.reuse_pct(), None);
    }

    #[test]
    fn summary_counts_window_and_report_records() {
        use uarch_obs::ledger::{ReportRecord, WindowRecord};
        let window = |w: u64| {
            LedgerRecord::Window(WindowRecord {
                run: 1,
                window: w,
                start: w * 256,
                end: (w + 1) * 256,
                baseline: 900,
                lag: 0,
                eval_us: 5,
                costs: [("dmiss".to_string(), 80)].into_iter().collect(),
                pairs: BTreeMap::new(),
                trace: String::new(),
            })
        };
        let report = LedgerRecord::Report(ReportRecord {
            run: 2,
            queries: 1,
            jobs: 1,
            deduped: 0,
            cache_hits: 0,
            disk_hits: 0,
            sims_run: 1,
            cycles: 100,
            insts: 50,
            threads: 2,
            expand_us: 1,
            sim_us: 2,
            skipped: 0,
            trace: String::new(),
        });
        let s = LedgerSummary::from_records(&[window(0), window(1), report]);
        assert_eq!(s.windows, 2);
        assert_eq!(s.window_insts, 512);
        assert_eq!(s.reports, 1);
        assert!(s.to_table().contains("window_records"));
        assert!(s.to_table().contains("report_records"));
        let doc = uarch_obs::json::parse(&s.to_json()).expect("valid JSON");
        assert_eq!(doc.get("window_records").and_then(Value::as_num), Some(2.0));
        assert_eq!(doc.get("report_records").and_then(Value::as_num), Some(1.0));
    }

    #[test]
    fn watch_renders_window_tables_in_wire_order() {
        use uarch_obs::ledger::{ReportRecord, WindowRecord};
        let record = LedgerRecord::Window(WindowRecord {
            run: 7,
            window: 3,
            start: 96,
            end: 128,
            baseline: 412,
            lag: 5,
            eval_us: 184,
            costs: [("dmiss", 96), ("win", 40), ("dl1", 12)]
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            pairs: [("dmiss+win", -31), ("bw+dmiss", 9)]
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            trace: String::new(),
        });
        let out = render_watch_record(&record);
        assert!(out.contains("window    3  insts [96,128)"), "{out}");
        assert!(out.contains("baseline 412 cyc  lag 5  eval 184us"), "{out}");
        // Costs print in EventClass wire order, not alphabetically.
        assert!(out.contains("dl1=12 win=40 dmiss=96"), "{out}");
        // Pairs print by descending magnitude with explicit sign.
        assert!(out.contains("dmiss+win=-31 bw+dmiss=+9"), "{out}");
        let report = LedgerRecord::Report(ReportRecord {
            run: 2,
            queries: 3,
            jobs: 4,
            deduped: 1,
            cache_hits: 2,
            disk_hits: 0,
            sims_run: 2,
            cycles: 900,
            insts: 450,
            threads: 2,
            expand_us: 10,
            sim_us: 20,
            skipped: 37,
            trace: String::new(),
        });
        let out = render_watch_record(&report);
        assert!(out.starts_with("report run 2  queries 3"), "{out}");
        assert!(out.contains("jobs 4 (1 deduped)"), "{out}");
    }

    fn audit(run: u64, verdict: &str) -> LedgerRecord {
        use uarch_obs::ledger::AuditRecord;
        LedgerRecord::Audit(AuditRecord {
            run,
            scope: "run".into(),
            baseline: 900,
            tolerance_pm: 250,
            score_pm: if verdict == "refuted" { 400 } else { 40 },
            confirmed: if verdict == "refuted" { 4 } else { 5 },
            refuted: u64::from(verdict == "refuted"),
            unmodeled: 3,
            verdict: verdict.into(),
            attributed: [("dmiss".to_string(), 120i64), ("win".to_string(), 40)]
                .into_iter()
                .collect(),
            counters: [("dmiss".to_string(), 110i64), ("win".to_string(), 45)]
                .into_iter()
                .collect(),
            divergence: [("dmiss".to_string(), 30i64), ("win".to_string(), -30)]
                .into_iter()
                .collect(),
            evidence: "largest divergence dmiss".into(),
            trace: String::new(),
        })
    }

    #[test]
    fn summary_tabulates_audit_records_by_verdict() {
        let s = LedgerSummary::from_records(&[
            audit(1, "confirmed"),
            audit(1, "confirmed"),
            audit(2, "refuted"),
            audit(2, "unmodeled"),
        ]);
        assert_eq!(s.audits, 4);
        assert_eq!(s.audit_confirmed, 2);
        assert_eq!(s.audit_refuted, 1);
        assert_eq!(s.audit_unmodeled, 1);
        assert_eq!(s.audit_refuted_rate(), Some(0.25));
        assert!(s.to_table().contains("audit_records"));
        assert!(s.to_table().contains("refuted"));
        let doc = uarch_obs::json::parse(&s.to_json()).expect("valid JSON");
        assert_eq!(doc.get("audit_records").and_then(Value::as_num), Some(4.0));
        assert_eq!(doc.get("audit_refuted").and_then(Value::as_num), Some(1.0));
        // Audit-free ledgers carry no rate (nothing to gate).
        assert_eq!(sample().audit_refuted_rate(), None);
        assert!(!sample().to_table().contains("audit_records"));
    }

    #[test]
    fn watch_renders_audit_records_as_waterfalls() {
        let record = audit(7, "refuted");
        let out = render_watch_record(&record);
        let LedgerRecord::Audit(a) = &record else {
            unreachable!()
        };
        assert_eq!(
            out,
            uarch_audit::render_waterfall(a),
            "watch and audit render identically"
        );
        assert!(out.contains("refuted"), "{out}");
        assert!(out.contains("dmiss"), "{out}");
    }

    #[test]
    fn lenient_summary_counts_plan_records_and_skips_future_kinds() {
        use uarch_obs::ledger::{CalibRecord, PlanRecord};
        let calib = LedgerRecord::Calib(CalibRecord {
            sim_ctx: "s".into(),
            graph_ctx: "g".into(),
            set: "dmiss".into(),
            graph_cost: 100,
            sim_cost: 97,
        });
        let plan = LedgerRecord::Plan(PlanRecord {
            run: 1,
            query: "cost(dmiss)".into(),
            backend: "graph".into(),
            confidence_pm: 910,
            reason: "trusted".into(),
            trace: String::new(),
        });
        let text = format!(
            "{}\n{}\n{{\"kind\":\"future\",\"x\":1}}\n",
            calib.to_json_line(),
            plan.to_json_line()
        );
        assert!(
            LedgerSummary::from_text(&text).is_err(),
            "strict parse rejects future kinds"
        );
        let (s, skipped) = LedgerSummary::from_text_lenient(&text).expect("lenient");
        assert_eq!(skipped, 1);
        assert_eq!(s.calibs, 1);
        assert_eq!(s.plans, 1);
        assert_eq!(s.plan_backends["graph"], 1);
        assert!(s.to_table().contains("plan_answers"));
        assert!(uarch_obs::json::parse(&s.to_json()).is_ok());
    }
}
