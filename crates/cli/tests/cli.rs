//! End-to-end tests of the `icost-obs` binary: real process spawns over
//! ledger files on disk, checking output shape and exit codes.

use std::path::PathBuf;
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_icost-obs");

/// A two-run ledger: run 1 computes the lattice, run 2 replays it from
/// the cache (the shape `Runner::run` writes).
const LEDGER: &str = r#"{"kind":"run","run":1,"ctx":"00000000deadbeef","queries":1,"threads":8,"insts":900,"ts_ms":1700000000000}
{"kind":"job","run":1,"set":"(none)","provenance":"computed","cycles":5000,"wall_us":120,"hash":"aaaa","stalls":{"issue_fu_busy":2,"load_mem_fill":7}}
{"kind":"job","run":1,"set":"dmiss","provenance":"computed","cycles":4200,"wall_us":110,"hash":"bbbb","stalls":{"issue_fu_busy":2}}
{"kind":"run","run":2,"ctx":"00000000deadbeef","queries":1,"threads":8,"insts":900,"ts_ms":1700000000100}
{"kind":"job","run":2,"set":"(none)","provenance":"memory","cycles":5000,"wall_us":3,"hash":"aaaa"}
{"kind":"job","run":2,"set":"dmiss","provenance":"disk","cycles":4200,"wall_us":9,"hash":"bbbb"}
"#;

/// Same workload gone bad: more sims, more cycles, a flipped hash.
const WORSE: &str = r#"{"kind":"run","run":1,"ctx":"00000000deadbeef","queries":1,"threads":4,"insts":900,"ts_ms":1700000001000}
{"kind":"job","run":1,"set":"(none)","provenance":"computed","cycles":9000,"wall_us":500,"hash":"aaaa"}
{"kind":"job","run":1,"set":"dmiss","provenance":"computed","cycles":8000,"wall_us":400,"hash":"cccc"}
{"kind":"job","run":1,"set":"win","provenance":"computed","cycles":7000,"wall_us":300,"hash":"dddd"}
"#;

fn write_fixture(name: &str, text: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("icost-obs-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, text).unwrap();
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn icost-obs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn summarize_renders_table_and_json() {
    let ledger = write_fixture("summarize.jsonl", LEDGER);
    let out = run(&["summarize", ledger.to_str().unwrap()]);
    assert!(out.status.success());
    let table = stdout(&out);
    for key in [
        "runs",
        "jobs",
        "sims_computed",
        "reuse_pct",
        "issue_fu_busy",
    ] {
        assert!(table.contains(key), "missing {key} in:\n{table}");
    }

    let out = run(&["summarize", "--json", ledger.to_str().unwrap()]);
    assert!(out.status.success());
    let doc = uarch_obs::json::parse(stdout(&out).trim()).expect("valid JSON");
    assert_eq!(doc.get("runs").and_then(|v| v.as_num()), Some(2.0));
    assert_eq!(doc.get("jobs").and_then(|v| v.as_num()), Some(4.0));
    assert_eq!(doc.get("sims_computed").and_then(|v| v.as_num()), Some(2.0));
    assert_eq!(doc.get("cycles").and_then(|v| v.as_num()), Some(9200.0));
    assert_eq!(doc.get("reuse_pct").and_then(|v| v.as_num()), Some(50.0));
}

#[test]
fn self_diff_is_deterministically_clean() {
    let ledger = write_fixture("self.jsonl", LEDGER);
    let path = ledger.to_str().unwrap();
    let first = run(&["diff", path, path]);
    let second = run(&["diff", path, path]);
    assert!(first.status.success(), "self-diff must exit 0");
    assert_eq!(stdout(&first), stdout(&second), "diff output deterministic");
    assert!(stdout(&first).contains("all matching sets agree"));

    let json = run(&["diff", "--json", path, path]);
    let doc = uarch_obs::json::parse(stdout(&json).trim()).expect("valid JSON");
    assert_eq!(doc.get("regressions").and_then(|v| v.as_num()), Some(0.0));
}

#[test]
fn diff_exits_nonzero_on_regression_and_tolerance_forgives() {
    let base = write_fixture("base.jsonl", LEDGER);
    let worse = write_fixture("worse.jsonl", WORSE);
    let out = run(&["diff", base.to_str().unwrap(), worse.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "regressions must exit 1");
    let table = stdout(&out);
    assert!(
        table.contains("REGRESSION"),
        "table flags regressions:\n{table}"
    );
    assert!(
        table.contains("MISMATCH for set dmiss"),
        "hash flip surfaces:\n{table}"
    );

    // A huge tolerance forgives the metric deltas, but a flipped result
    // hash in the same context is never forgivable.
    let out = run(&[
        "diff",
        "--tolerance",
        "100",
        "--wall-tolerance",
        "100",
        base.to_str().unwrap(),
        worse.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(!stdout(&out).contains("REGRESSION"));
    assert!(stdout(&out).contains("MISMATCH"));
}

#[test]
fn bench_export_writes_deterministic_document() {
    let ledger = write_fixture("bench.jsonl", LEDGER);
    let out_path = write_fixture("BENCH_TEST.json", "");
    let args = [
        "bench-export",
        "--tag",
        "TEST",
        "--out",
        out_path.to_str().unwrap(),
        ledger.to_str().unwrap(),
    ];
    assert!(run(&args).status.success());
    let first = std::fs::read_to_string(&out_path).unwrap();
    assert!(run(&args).status.success());
    let second = std::fs::read_to_string(&out_path).unwrap();
    assert_eq!(first, second, "re-export is byte-identical");
    let doc = uarch_obs::json::parse(&first).expect("valid JSON");
    assert_eq!(doc.get("tag").and_then(|v| v.as_str()), Some("TEST"));
    assert_eq!(
        doc.get("summary")
            .and_then(|v| v.get("cycles"))
            .and_then(|v| v.as_num()),
        Some(9200.0)
    );
}

/// A ledger with no run or job records exports nothing worth gating on:
/// bench-export must refuse (exit 2, file untouched) unless the caller
/// passes --allow-empty, in which case it warns and writes the document.
#[test]
fn bench_export_refuses_empty_ledger_unless_allowed() {
    // Records exist, but none of them are run headers or jobs.
    let ledger = write_fixture(
        "empty-bench.jsonl",
        r#"{"kind":"calib","sim_ctx":"00000000deadbeef","graph_ctx":"00000000feedface","set":"dmiss","graph_cost":100,"sim_cost":93}
"#,
    );
    let out_path = write_fixture("BENCH_EMPTY.json", "sentinel");
    let mut args = vec![
        "bench-export",
        "--tag",
        "EMPTY",
        "--out",
        out_path.to_str().unwrap(),
        ledger.to_str().unwrap(),
    ];
    let out = run(&args);
    assert_eq!(out.status.code(), Some(2), "empty export must exit 2");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no run or job records"),
        "stderr explains the refusal: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read_to_string(&out_path).unwrap(),
        "sentinel",
        "refused export must not touch the output file"
    );

    args.insert(1, "--allow-empty");
    let out = run(&args);
    assert!(out.status.success(), "--allow-empty overrides the guard");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--allow-empty"));
    let doc =
        uarch_obs::json::parse(&std::fs::read_to_string(&out_path).unwrap()).expect("valid JSON");
    assert_eq!(doc.get("tag").and_then(|v| v.as_str()), Some("EMPTY"));
}

/// A ledger written by a (hypothetical) newer build: a record kind this
/// build has never heard of, plus an extra field on a known kind. Both
/// must be tolerated — version skew between the process that wrote the
/// ledger and the CLI that audits it must not fail the regression gate.
const FUTURE: &str = r#"{"kind":"run","run":1,"ctx":"00000000deadbeef","queries":1,"threads":8,"insts":900,"ts_ms":1700000000000,"schema":9}
{"kind":"job","run":1,"set":"(none)","provenance":"computed","cycles":5000,"wall_us":120,"hash":"aaaa","stalls":{"issue_fu_busy":2,"load_mem_fill":7}}
{"kind":"job","run":1,"set":"dmiss","provenance":"computed","cycles":4200,"wall_us":110,"hash":"bbbb","stalls":{"issue_fu_busy":2}}
{"kind":"hologram","run":1,"payload":"from the future"}
{"kind":"run","run":2,"ctx":"00000000deadbeef","queries":1,"threads":8,"insts":900,"ts_ms":1700000000100}
{"kind":"job","run":2,"set":"(none)","provenance":"memory","cycles":5000,"wall_us":3,"hash":"aaaa"}
{"kind":"job","run":2,"set":"dmiss","provenance":"disk","cycles":4200,"wall_us":9,"hash":"bbbb"}
"#;

#[test]
fn diff_and_summarize_tolerate_future_record_kinds() {
    let base = write_fixture("skew-base.jsonl", LEDGER);
    let future = write_fixture("skew-new.jsonl", FUTURE);
    // Same runs/jobs plus an unknown record and an unknown field: the
    // diff must treat them as equivalent and exit 0, not 2.
    let out = run(&["diff", base.to_str().unwrap(), future.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("skipped 1 record"),
        "skips are reported, not silent"
    );
    let out = run(&["summarize", future.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("runs"));
}

#[test]
fn plan_subcommand_reports_routing_and_calibration() {
    let ledger = write_fixture(
        "plan.jsonl",
        r#"{"kind":"calib","sim_ctx":"00000000deadbeef","graph_ctx":"00000000feedface","set":"dmiss","graph_cost":100,"sim_cost":93}
{"kind":"calib","sim_ctx":"00000000deadbeef","graph_ctx":"00000000feedface","set":"win","graph_cost":50,"sim_cost":48}
{"kind":"plan","run":1,"query":"cost(dmiss)","backend":"sim","confidence_pm":1000,"reason":"uncalibrated"}
{"kind":"plan","run":1,"query":"icost(dmiss+win)","backend":"graph","confidence_pm":905,"reason":"trusted"}
{"kind":"plan","run":2,"query":"cost(dmiss)","backend":"cache","confidence_pm":1000,"reason":"cache_complete"}
"#,
    );
    let out = run(&["plan", ledger.to_str().unwrap()]);
    assert!(out.status.success());
    let table = stdout(&out);
    for needle in [
        "plan_answers",
        "via cache",
        "via graph",
        "via sim",
        "reason trusted",
        "calib_records",
        "samples=2",
    ] {
        assert!(table.contains(needle), "missing {needle} in:\n{table}");
    }

    let out = run(&["plan", "--json", ledger.to_str().unwrap()]);
    assert!(out.status.success());
    let doc = uarch_obs::json::parse(stdout(&out).trim()).expect("valid JSON");
    assert_eq!(doc.get("answers").and_then(|v| v.as_num()), Some(3.0));
    assert_eq!(doc.get("calib_records").and_then(|v| v.as_num()), Some(2.0));
    let contexts = doc.get("contexts").and_then(|v| v.as_arr()).expect("arr");
    assert_eq!(contexts.len(), 1);
    assert_eq!(
        contexts[0].get("samples").and_then(|v| v.as_num()),
        Some(2.0)
    );
}

#[test]
fn bad_usage_and_bad_input_exit_two() {
    let out = run(&["diff", "/nonexistent/a.jsonl", "/nonexistent/b.jsonl"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["summarize"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let garbled = write_fixture("garbled.jsonl", "{\"kind\":\"job\"\n");
    let out = run(&["summarize", garbled.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let help = run(&["--help"]);
    assert!(help.status.success());
    assert!(stdout(&help).contains("bench-export"));
}
