//! End-to-end test of `icost-obs serve`: a real server process with a
//! file-backed ledger, a raw-socket client, and the acceptance check
//! that SSE-streamed records are byte-equivalent to the
//! `ICOST_LEDGER_FILE` lines for the same run.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_icost-obs");

struct ServerProcess {
    child: Child,
    addr: SocketAddr,
    ledger_path: PathBuf,
}

impl ServerProcess {
    /// Spawn `icost-obs serve` on an ephemeral port with a fresh ledger
    /// file, and parse the bound address from its startup line.
    fn spawn() -> ServerProcess {
        ServerProcess::spawn_with(&[], "main")
    }

    /// [`ServerProcess::spawn_with`] plus extra environment variables.
    fn spawn_with_env(extra_args: &[&str], tag: &str, envs: &[(&str, &str)]) -> ServerProcess {
        ServerProcess::spawn_inner(extra_args, tag, envs)
    }

    /// [`ServerProcess::spawn`] with extra CLI arguments and a distinct
    /// ledger file per `tag` (tests run in one process; sharing a
    /// ledger file would interleave their records).
    fn spawn_with(extra_args: &[&str], tag: &str) -> ServerProcess {
        ServerProcess::spawn_inner(extra_args, tag, &[])
    }

    fn spawn_inner(extra_args: &[&str], tag: &str, envs: &[(&str, &str)]) -> ServerProcess {
        let dir = std::env::temp_dir().join(format!("icost-serve-e2e-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ledger_path = dir.join(format!("serve-{tag}.jsonl"));
        let _ = std::fs::remove_file(&ledger_path);
        let mut child = Command::new(BIN)
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workload",
                "gzip",
                "--insts",
                "3000",
                "--threads",
                "2",
            ])
            .args(extra_args)
            .envs(envs.iter().copied())
            .env("ICOST_LEDGER_FILE", &ledger_path)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn icost-obs serve");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let addr = lines
            .next()
            .expect("startup line")
            .expect("readable stdout")
            .strip_prefix("listening on ")
            .expect("startup line format")
            .parse()
            .expect("socket address");
        ServerProcess {
            child,
            addr,
            ledger_path,
        }
    }
}

impl Drop for ServerProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Send one request, return `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    request_with(addr, method, path, "", body)
}

/// [`request`] with extra header lines (each ending `\r\n`).
fn request_with(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra: &str,
    body: &str,
) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: t\r\n{extra}Content-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status = response
        .split_whitespace()
        .nth(1)
        .expect("status")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn serve_process_answers_scrapes_and_streams_the_ledger() {
    let server = ServerProcess::spawn();
    let addr = server.addr;

    // Probes come up with the server.
    let (status, health) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{health}");
    assert!(health.contains("\"workload\":\"gzip\""), "{health}");
    let (status, _) = request(addr, "GET", "/readyz", "");
    assert_eq!(status, 200);

    // Subscribe to /events BEFORE the batch so every record streams.
    let mut events = TcpStream::connect(addr).expect("connect events");
    events
        .set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    events
        .write_all(b"GET /events HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("request events");
    let mut streamed = String::new();
    read_until(&mut events, &mut streamed, |s| s.contains("\r\n\r\n"));
    let head_end = streamed.find("\r\n\r\n").unwrap() + 4;
    let head: String = streamed.drain(..head_end).collect();
    assert!(head.contains("text/event-stream"), "{head}");

    // The quickstart batch.
    let batch = r#"{"queries":[{"cost":"dmiss"},{"icost":"dmiss+win"}]}"#;
    let (status, body) = request(addr, "POST", "/query", batch);
    assert_eq!(status, 200, "{body}");
    let doc = uarch_obs::json::parse(&body).expect("response is JSON");
    assert_eq!(
        doc.get("answers").and_then(|v| v.as_arr()).map(<[_]>::len),
        Some(2)
    );

    // The scrape carries runner and stall series and passes the checker.
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    uarch_obs::prom::check(&metrics).expect("exposition parses");
    for needle in ["runner_sims_run", "sim_stall_", "ledger_records"] {
        assert!(metrics.contains(needle), "missing {needle} in:\n{metrics}");
    }

    // Acceptance: the SSE stream is byte-equivalent to the ledger file.
    // run_warmed flushes the ledger at batch end, so the file is
    // complete once the POST returned.
    let ledger_text = std::fs::read_to_string(&server.ledger_path).expect("ledger file");
    let ledger_lines: Vec<&str> = ledger_text.lines().collect();
    assert!(ledger_lines.len() >= 2, "run header + jobs:\n{ledger_text}");
    read_until(&mut events, &mut streamed, |s| {
        data_lines(s).len() >= ledger_lines.len()
    });
    assert_eq!(
        data_lines(&streamed),
        ledger_lines,
        "SSE records must match the ICOST_LEDGER_FILE lines byte-for-byte"
    );
}

/// A token-protected server process: every endpoint 401s without the
/// bearer token, works normally with it, and `backend:"auto"` batches
/// come back with per-answer provenance/confidence plus `plan_*`
/// metrics — the same surface CI smoke-tests over HTTP.
#[test]
fn serve_process_enforces_bearer_token_and_answers_auto_batches() {
    let server = ServerProcess::spawn_with(&["--token", "hunter2"], "auth");
    let addr = server.addr;

    let (status, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 401, "no token → 401");
    let (status, _) = request_with(
        addr,
        "GET",
        "/metrics",
        "Authorization: Bearer nope\r\n",
        "",
    );
    assert_eq!(status, 401, "wrong token → 401");

    let auth = "Authorization: Bearer hunter2\r\n";
    let (status, health) = request_with(addr, "GET", "/healthz", auth, "");
    assert_eq!(status, 200, "{health}");

    let batch = r#"{"backend":"auto","queries":[{"cost":"dmiss"},{"icost":"dmiss+win"}]}"#;
    let (status, body) = request_with(addr, "POST", "/query", auth, batch);
    assert_eq!(status, 200, "{body}");
    let doc = uarch_obs::json::parse(&body).expect("response is JSON");
    assert_eq!(doc.get("backend").and_then(|v| v.as_str()), Some("auto"));
    let prov = doc
        .get("provenance")
        .and_then(|v| v.as_arr())
        .expect("provenance array");
    assert_eq!(prov.len(), 2, "{body}");
    let conf = doc
        .get("confidence")
        .and_then(|v| v.as_arr())
        .expect("confidence array");
    assert_eq!(conf.len(), 2, "{body}");

    let (status, metrics) = request_with(addr, "GET", "/metrics", auth, "");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("plan_queries"),
        "missing plan_queries in:\n{metrics}"
    );

    // The auth failures were counted as HTTP errors.
    assert!(metrics.contains("serve_http_errors"), "{metrics}");
}

/// Live attach end to end: chunked `POST /ingest` batches retire
/// windows whose `window` records stream over SSE byte-identical to
/// the `ICOST_LEDGER_FILE` lines, `icost-obs watch` renders them (in
/// both SSE-tail and ledger-tail modes), and `/metrics` carries the
/// `ingest_*`/`window_*` series.
#[test]
fn streamed_ingest_matches_ledger_and_watch_renders_windows() {
    let server = ServerProcess::spawn_with(&[], "ingest");
    let addr = server.addr;

    // A watch client tailing only window records over SSE, started
    // before any ingest so nothing slips past it. Its first stderr
    // line confirms the subscription is live.
    let mut watch_sse = Command::new(BIN)
        .args(["watch", "--addr", &addr.to_string(), "--limit", "5"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn watch --addr");
    let mut watch_err = BufReader::new(watch_sse.stderr.take().expect("stderr piped"));
    let mut line = String::new();
    watch_err.read_line(&mut line).expect("watch stderr");
    assert!(line.contains("watching"), "{line}");

    // A raw SSE subscriber with the same server-side kinds filter.
    let mut events = TcpStream::connect(addr).expect("connect events");
    events
        .set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    events
        .write_all(b"GET /events?kinds=window HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("request events");
    let mut streamed = String::new();
    read_until(&mut events, &mut streamed, |s| s.contains("\r\n\r\n"));
    let head_end = streamed.find("\r\n\r\n").unwrap() + 4;
    streamed.drain(..head_end);

    // Stream a 100-instruction connected trace in three chunked POSTs
    // against a 24-instruction window: 4 full windows retire in-stream,
    // `done` flushes the 4-instruction tail as the fifth.
    let mut b = uarch_trace::TraceBuilder::new();
    let r1 = uarch_trace::Reg::int(1);
    let r2 = uarch_trace::Reg::int(2);
    b.counted_loop(25, r2, |b, k| {
        b.load(r1, 0x4000 + (k as u64 % 5) * 64);
        b.alu(r2, &[r1]);
        b.store(r2, 0x9000 + (k as u64 % 3) * 8);
    });
    let insts: Vec<uarch_trace::Inst> = b.finish().insts()[..100].to_vec();
    for (i, chunk) in insts.chunks(40).enumerate() {
        let done = (i + 1) * 40 >= 100;
        let encoded: Vec<String> = chunk.iter().map(uarch_serve::inst_to_json).collect();
        let body = format!(
            "{{\"session\":\"e2e\",\"window\":24,\"insts\":[{}],\"done\":{done}}}",
            encoded.join(","),
        );
        let (status, response) = request(addr, "POST", "/ingest", &body);
        assert_eq!(status, 200, "{response}");
        if done {
            let doc = uarch_obs::json::parse(&response).expect("ingest response JSON");
            assert_eq!(doc.get("ingested").and_then(|v| v.as_num()), Some(100.0));
            assert_eq!(doc.get("windows").and_then(|v| v.as_num()), Some(5.0));
        }
    }

    // Acceptance: SSE window records ≡ the ledger file's window lines.
    let ledger_text = std::fs::read_to_string(&server.ledger_path).expect("ledger file");
    let window_lines: Vec<&str> = ledger_text
        .lines()
        .filter(|l| l.starts_with("{\"kind\":\"window\""))
        .collect();
    assert_eq!(window_lines.len(), 5, "{ledger_text}");
    read_until(&mut events, &mut streamed, |s| data_lines(s).len() >= 5);
    assert_eq!(
        data_lines(&streamed),
        window_lines,
        "SSE window records must match the ICOST_LEDGER_FILE lines byte-for-byte"
    );

    // The SSE watch client saw the same five windows and exited at its
    // --limit, rendering a breakdown table per window.
    let out = watch_sse.wait_with_output().expect("watch --addr exits");
    assert!(out.status.success(), "{out:?}");
    let rendered = String::from_utf8_lossy(&out.stdout);
    assert_eq!(rendered.matches("baseline").count(), 5, "{rendered}");
    assert!(rendered.contains("insts [0,24)"), "{rendered}");
    assert!(rendered.contains("insts [96,100)"), "{rendered}");

    // Ledger-tail mode renders the same windows from the file.
    let out = Command::new(BIN)
        .args(["watch", "--ledger"])
        .arg(&server.ledger_path)
        .args(["--limit", "5"])
        .output()
        .expect("watch --ledger exits");
    assert!(out.status.success(), "{out:?}");
    let tailed = String::from_utf8_lossy(&out.stdout);
    assert_eq!(tailed, rendered, "both watch modes render identically");

    // The new series are on /metrics.
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for needle in [
        "ingest_sessions{registry=\"ingest\"} 0",
        "ingest_insts{registry=\"ingest\"} 100",
        "window_evals{registry=\"ingest\"} 5",
    ] {
        assert!(metrics.contains(needle), "missing {needle} in:\n{metrics}");
    }

    // And /readyz reports build/runtime info as JSON.
    let (status, ready) = request(addr, "GET", "/readyz", "");
    assert_eq!(status, 200);
    let doc = uarch_obs::json::parse(ready.trim()).expect("readyz JSON");
    assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("ready"));
    assert!(doc.get("version").is_some(), "{ready}");
    assert_eq!(
        doc.get("ledger_sink"),
        Some(&uarch_obs::json::Value::Bool(true))
    );
}

/// The audit plane end to end: `POST /explain` answers with the audit
/// record itself (plus provenance fields), the identical record lands
/// in the ledger and on `/events?kinds=audit`, `icost-obs audit`
/// renders the byte-identical waterfall and gates on the refuted rate,
/// `/metrics` carries the `audit_*` series, and `/readyz` reports the
/// audit subsystem state.
#[test]
fn explain_and_cli_audit_produce_identical_waterfalls() {
    let server = ServerProcess::spawn_with_env(&[], "audit", &[("ICOST_AUDIT", "1")]);
    let addr = server.addr;

    // Subscribe to audit records before provoking any.
    let mut events = TcpStream::connect(addr).expect("connect events");
    events
        .set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    events
        .write_all(b"GET /events?kinds=audit HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("request events");
    let mut streamed = String::new();
    read_until(&mut events, &mut streamed, |s| s.contains("\r\n\r\n"));
    let head_end = streamed.find("\r\n\r\n").unwrap() + 4;
    streamed.drain(..head_end);

    // Whole-run explain: the response body IS the ledger record, with
    // workload/provenance spliced in for the HTTP consumer.
    let (status, body) = request(addr, "POST", "/explain", "");
    assert_eq!(status, 200, "{body}");
    let doc = uarch_obs::json::parse(body.trim()).expect("explain JSON");
    assert_eq!(doc.get("kind").and_then(|v| v.as_str()), Some("audit"));
    assert_eq!(doc.get("workload").and_then(|v| v.as_str()), Some("gzip"));
    assert_eq!(
        doc.get("provenance").and_then(|v| v.as_str()),
        Some("graph+counters")
    );
    assert_eq!(doc.get("scope").and_then(|v| v.as_str()), Some("run"));
    // Unknown-field tolerance makes the response parse as exactly the
    // ledger's audit record.
    let (records, _) = uarch_obs::ledger::parse_ledger_lenient(body.trim()).expect("parses");
    let uarch_obs::ledger::LedgerRecord::Audit(from_http) = &records[0] else {
        panic!("not an audit record: {body}");
    };
    let http_waterfall = uarch_audit::render_waterfall(from_http);
    assert!(http_waterfall.contains("category"), "{http_waterfall}");

    // Sub-range explain and request validation.
    let (status, ranged) = request(addr, "POST", "/explain", r#"{"start":0,"end":1000}"#);
    assert_eq!(status, 200, "{ranged}");
    let doc = uarch_obs::json::parse(ranged.trim()).expect("ranged JSON");
    assert_eq!(
        doc.get("scope").and_then(|v| v.as_str()),
        Some("range 0..1000")
    );
    let (status, _) = request(addr, "POST", "/explain", r#"{"start":5}"#);
    assert_eq!(status, 400, "start without end must be rejected");
    let (status, _) = request(addr, "POST", "/explain", r#"{"start":0,"end":999999}"#);
    assert_eq!(status, 400, "out-of-range end must be rejected");

    // Acceptance: the CLI renders the identical waterfall from the
    // ledger file, and its --max-refuted gate passes at the lax bound.
    let ledger_text = std::fs::read_to_string(&server.ledger_path).expect("ledger file");
    let audit_lines: Vec<&str> = ledger_text
        .lines()
        .filter(|l| l.starts_with("{\"kind\":\"audit\""))
        .collect();
    assert_eq!(audit_lines.len(), 2, "{ledger_text}");
    let out = Command::new(BIN)
        .arg("audit")
        .arg(&server.ledger_path)
        .args(["--max-refuted", "1.0"])
        .output()
        .expect("icost-obs audit runs");
    assert!(out.status.success(), "{out:?}");
    let cli = String::from_utf8_lossy(&out.stdout);
    assert!(
        cli.contains(&http_waterfall),
        "CLI waterfall must be byte-identical to the /explain one.\nCLI:\n{cli}\nHTTP:\n{http_waterfall}"
    );
    let gate_note = String::from_utf8_lossy(&out.stderr);
    assert!(gate_note.contains("2 audit record(s)"), "{gate_note}");

    // The SSE subscriber saw the same records the ledger file holds.
    read_until(&mut events, &mut streamed, |s| data_lines(s).len() >= 2);
    assert_eq!(
        data_lines(&streamed),
        audit_lines,
        "SSE audit records must match the ICOST_LEDGER_FILE lines byte-for-byte"
    );

    // audit_* series are on /metrics.
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    uarch_obs::prom::check(&metrics).expect("exposition parses");
    for needle in ["audit_checks", "audit_confirmed", "audit_residual_pm_dmiss"] {
        assert!(metrics.contains(needle), "missing {needle} in:\n{metrics}");
    }

    // /readyz reports the audit plane enabled with its running state.
    let (status, ready) = request(addr, "GET", "/readyz", "");
    assert_eq!(status, 200);
    let doc = uarch_obs::json::parse(ready.trim()).expect("readyz JSON");
    let audit_state = doc.get("audit").expect("audit state in readyz");
    assert_eq!(
        audit_state.get("enabled"),
        Some(&uarch_obs::json::Value::Bool(true)),
        "{ready}"
    );
    assert!(audit_state.get("refuted_rate").is_some(), "{ready}");
}

/// The payloads of complete `data:` frames, in order.
fn data_lines(streamed: &str) -> Vec<&str> {
    streamed
        .split("\n\n")
        .filter_map(|frame| frame.trim_start_matches('\n').strip_prefix("data: "))
        .collect()
}

/// Append socket bytes to `buf` until `done(buf)` or a 30s deadline.
fn read_until(stream: &mut TcpStream, buf: &mut String, done: impl Fn(&str) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut chunk = [0u8; 4096];
    while !done(buf) {
        assert!(Instant::now() < deadline, "timed out; got:\n{buf}");
        match stream.read(&mut chunk) {
            Ok(0) => panic!("stream closed early; got:\n{buf}"),
            Ok(n) => buf.push_str(&String::from_utf8_lossy(&chunk[..n])),
            Err(_) => {} // read-timeout tick; re-check the predicate
        }
    }
}
