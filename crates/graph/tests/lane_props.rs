//! Property-based equivalence tests for the lane-batched evaluation
//! kernel: over randomly generated graphs, batches, lane widths, and
//! chunk lengths, `eval_many` must be *bit-identical* to the scalar
//! [`DepGraph::evaluate`] recurrence — parallel lanes and frontier
//! stitching change when numbers are computed, never what they are.

use proptest::prelude::*;

use uarch_graph::{DepGraph, GraphInst, GraphParams, LaneScratch, ProducerEdge, MAX_LANES};
use uarch_trace::{EventClass, EventSet, MachineConfig};

/// Random per-instruction node data exercising every edge class the
/// kernel masks: window/bandwidth edges come from the params, the rest
/// from these fields.
fn arb_graph_inst(idx: u32) -> impl Strategy<Value = GraphInst> {
    (
        0u64..4,       // dd latency (Imiss-masked)
        any::<bool>(), // mispredicted (Bmisp-masked PD edge)
        0u64..4,       // re latency (Bw-masked)
        0u64..5,       // ep_dl1
        0u64..120,     // ep_dmiss
        0u64..3,       // ep_shalu
        0u64..13,      // ep_lgalu
        proptest::option::of((0..idx.max(1), 0u64..6, 0u8..3)),
        proptest::option::of((0..idx.max(1), 0u64..6, 0u8..3)),
        proptest::option::of(0..idx.max(1)),
    )
        .prop_map(
            move |(dd, misp, re, dl1, dmiss, shalu, lgalu, p0, p1, pp)| {
                let mk = |p: Option<(u32, u64, u8)>| {
                    p.filter(|_| idx > 0)
                        .map(|(producer, bubble, class)| ProducerEdge {
                            producer,
                            bubble,
                            bubble_class: match class {
                                0 => None,
                                1 => Some(EventClass::ShortAlu),
                                _ => Some(EventClass::LongAlu),
                            },
                        })
                };
                GraphInst {
                    dd_latency: dd,
                    mispredicted: misp,
                    re_latency: re,
                    ep_dl1: dl1,
                    ep_dmiss: dmiss,
                    ep_shalu: shalu,
                    ep_lgalu: lgalu,
                    ep_base: 0,
                    producers: [mk(p0), mk(p1)],
                    pp_producer: pp.filter(|_| idx > 0),
                }
            },
        )
}

fn arb_graph() -> impl Strategy<Value = DepGraph> {
    prop::collection::vec(0u32..1, 0..90).prop_flat_map(|v| {
        let n = v.len() as u32;
        (0..n)
            .map(arb_graph_inst)
            .collect::<Vec<_>>()
            .prop_map(move |insts| {
                DepGraph::from_parts(insts, GraphParams::from(&MachineConfig::table6()))
            })
    })
}

fn arb_sets() -> impl Strategy<Value = Vec<EventSet>> {
    prop::collection::vec(any::<u8>().prop_map(EventSet::from_bits), 0..3 * MAX_LANES)
}

fn scalar(graph: &DepGraph, sets: &[EventSet]) -> Vec<u64> {
    sets.iter().map(|&s| graph.evaluate(s)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The kernel's default path (every dispatch width, padded lanes,
    /// duplicate sets, multi-group batches) is bit-identical to the
    /// scalar recurrence on arbitrary graphs — including empty ones.
    #[test]
    fn eval_many_matches_scalar(graph in arb_graph(), sets in arb_sets()) {
        prop_assert_eq!(graph.eval_many(&sets), scalar(&graph, &sets));
    }

    /// Every lane width (batch sizes 1..=MAX_LANES hit dispatch widths
    /// 1/2/4/8/16, with and without padding lanes) is exact.
    #[test]
    fn every_lane_width_matches_scalar(graph in arb_graph(), bits in any::<u8>()) {
        let mut scratch = LaneScratch::new();
        for width in 1..=MAX_LANES {
            let sets: Vec<EventSet> = (0..width)
                .map(|k| EventSet::from_bits(bits.rotate_left(k as u32)))
                .collect();
            prop_assert_eq!(
                graph.eval_many_with(&sets, &mut scratch),
                scalar(&graph, &sets),
                "width {} diverged", width
            );
        }
    }

    /// Frontier stitching: any chunk length — including 1, lengths that
    /// straddle the fetch/ROB/commit windows, and lengths beyond the
    /// graph — resolves window edges exactly as an unchunked pass.
    #[test]
    fn any_chunk_length_matches_scalar(
        graph in arb_graph(),
        sets in arb_sets(),
        chunk in 1usize..100,
    ) {
        let mut scratch = LaneScratch::new();
        prop_assert_eq!(
            graph.eval_many_chunked(&sets, chunk, &mut scratch),
            scalar(&graph, &sets)
        );
    }

    /// `cost_many` agrees with the scalar cost definition
    /// `cost(S) = t(∅) − t(S)` set-by-set.
    #[test]
    fn cost_many_matches_scalar_costs(graph in arb_graph(), sets in arb_sets()) {
        let base = graph.evaluate(EventSet::EMPTY) as i64;
        let expect: Vec<i64> = sets.iter().map(|&s| base - graph.evaluate(s) as i64).collect();
        prop_assert_eq!(graph.cost_many(&sets), expect);
    }

    /// One scratch reused across graphs of different shapes never leaks
    /// state between batches.
    #[test]
    fn scratch_reuse_is_stateless(a in arb_graph(), b in arb_graph(), sets in arb_sets()) {
        let mut scratch = LaneScratch::new();
        let _ = a.eval_many_with(&sets, &mut scratch);
        prop_assert_eq!(b.eval_many_with(&sets, &mut scratch), scalar(&b, &sets));
        prop_assert_eq!(a.eval_many_with(&sets, &mut scratch), scalar(&a, &sets));
    }
}

#[test]
fn full_lattice_on_empty_graph() {
    let graph = DepGraph::from_parts(Vec::new(), GraphParams::from(&MachineConfig::table6()));
    let sets: Vec<EventSet> = (0u16..256).map(|b| EventSet::from_bits(b as u8)).collect();
    assert_eq!(graph.eval_many(&sets), scalar(&graph, &sets));
}
