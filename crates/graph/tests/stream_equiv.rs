//! Property-based incremental-vs-batch equivalence: over random
//! workload traces × window sizes × push-chunk boundaries × lane-chunk
//! lengths, every window a [`StreamingBuilder`] retires must be
//! *bit-identical* to a batch `DepGraph` analysis of the same
//! instruction range in isolation — streaming changes when analysis
//! happens, never what it computes.

use proptest::prelude::*;

use uarch_graph::{DepGraph, StreamingBuilder};
use uarch_sim::{Idealization, Simulator};
use uarch_trace::{EventClass, EventSet, MachineConfig, Trace};

/// A workload trace plus the streaming knobs under test.
#[derive(Debug)]
struct Case {
    profile: &'static str,
    insts: usize,
    seed: u64,
    window: usize,
    push_chunk: usize,
    lane_chunk: usize,
}

fn arb_case() -> impl Strategy<Value = Case> {
    const PROFILES: [&str; 4] = ["gzip", "mcf", "vortex", "gcc"];
    (
        (0usize..PROFILES.len()).prop_map(|i| PROFILES[i]),
        200usize..700,
        0u64..1_000,
        8usize..100,
        1usize..130,
        1usize..200,
    )
        .prop_map(
            |(profile, insts, seed, window, push_chunk, lane_chunk)| Case {
                profile,
                insts,
                seed,
                window,
                push_chunk,
                lane_chunk,
            },
        )
}

/// The batch side of the equivalence: analyze `[start, end)` of the
/// stream as its own trace, exactly as a post-mortem pipeline would.
fn batch_window(trace: &Trace, start: usize, end: usize, config: &MachineConfig) -> DepGraph {
    let t = Trace::from_insts(trace.insts()[start..end].to_vec());
    let result = Simulator::new(config).run(&t, Idealization::none());
    DepGraph::build(&t, &result, config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streaming_windows_are_bit_identical_to_batch_graphs(case in arb_case()) {
        let config = MachineConfig::table6();
        let profile = uarch_workloads::BenchProfile::by_name(case.profile).unwrap();
        let w = uarch_workloads::generate(profile, case.insts, case.seed);
        let mut builder = StreamingBuilder::new(&config, case.window)
            .with_chunk(case.lane_chunk);
        let mut windows = Vec::new();
        for chunk in w.trace.insts().chunks(case.push_chunk) {
            windows.extend(builder.push_batch(chunk).expect("generated traces are connected"));
        }
        if let Some(tail) = builder.finish() {
            windows.push(tail);
        }
        prop_assert_eq!(windows.len(), case.insts.div_ceil(case.window));
        prop_assert_eq!(builder.ingested(), case.insts as u64);

        let mut expect_start = 0u64;
        for win in &windows {
            prop_assert_eq!(win.start, expect_start, "windows tile the stream");
            expect_start = win.end;
            let graph = batch_window(&w.trace, win.start as usize, win.end as usize, &config);
            // Baseline and the eight singleton costs, bit for bit.
            prop_assert_eq!(win.baseline, graph.evaluate(EventSet::EMPTY));
            for (i, class) in EventClass::ALL.iter().enumerate() {
                prop_assert_eq!(
                    win.costs[i],
                    graph.cost(EventSet::single(*class)),
                    "window {} cost({})", win.window, class
                );
            }
            // The reported pair interactions match the scalar closed
            // form, and they really are the largest-magnitude nonzero
            // pairs: nothing omitted beats the smallest one kept.
            let mut floor = i64::MAX;
            for (set, icost) in &win.pairs {
                let mut it = set.iter();
                let (a, b) = (it.next().unwrap(), it.next().unwrap());
                let expect = graph.cost(*set)
                    - graph.cost(EventSet::single(a))
                    - graph.cost(EventSet::single(b));
                prop_assert_eq!(*icost, expect, "window {} icost({})", win.window, set);
                prop_assert_ne!(*icost, 0);
                floor = floor.min(icost.abs());
            }
            if win.pairs.len() == uarch_graph::DEFAULT_TOP_PAIRS {
                let kept: Vec<EventSet> = win.pairs.iter().map(|(s, _)| *s).collect();
                for (i, a) in EventClass::ALL.iter().enumerate() {
                    for b in &EventClass::ALL[i + 1..] {
                        let set = EventSet::single(*a).with(*b);
                        if kept.contains(&set) {
                            continue;
                        }
                        let omitted = graph.cost(set)
                            - graph.cost(EventSet::single(*a))
                            - graph.cost(EventSet::single(*b));
                        prop_assert!(
                            omitted.abs() <= floor,
                            "omitted pair {} (icost {}) beats kept floor {}",
                            set, omitted, floor
                        );
                    }
                }
            }
        }
        prop_assert_eq!(expect_start, case.insts as u64);
    }
}
