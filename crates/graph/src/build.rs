//! Building the dependence graph from a simulated execution.
//!
//! All dynamically-collected latencies and dependences (paper Figure 5b,
//! column "D") come from the simulator's [`ExecRecord`]s; static ones come
//! from the trace and the machine configuration.

use crate::model::{DepGraph, GraphInst, GraphParams, ProducerEdge};
use uarch_sim::{ExecRecord, SimResult};
use uarch_trace::{EventClass, Inst, MachineConfig, Trace};

impl DepGraph {
    /// Build the full dependence graph of the execution `result` observed
    /// for `trace` on the machine `config`.
    ///
    /// # Panics
    /// Panics if `result` does not have one record per trace instruction.
    pub fn build(trace: &Trace, result: &SimResult, config: &MachineConfig) -> DepGraph {
        let tracer = uarch_obs::global();
        let _sp = if tracer.is_enabled() {
            tracer.span_with(
                "graph",
                "graph.build",
                vec![("insts", trace.len().to_string())],
            )
        } else {
            tracer.span("graph", "graph.build")
        };
        assert_eq!(
            trace.len(),
            result.records.len(),
            "records do not match trace"
        );
        let insts = result
            .records
            .iter()
            .enumerate()
            .map(|(i, rec)| graph_inst_with_trace(trace, i, rec, config))
            .collect();
        DepGraph::from_parts(insts, GraphParams::from(config))
    }
}

/// Decompose an observed `EP` execution latency into per-category
/// components (see [`GraphInst`]): `(dl1, dmiss, shalu, lgalu, base)`.
///
/// `merged` marks a partial miss (the load shares an outstanding fill via
/// a `PP` edge), in which case the fill wait is *not* charged on `EP`.
pub fn decompose_ep(
    op: uarch_trace::OpClass,
    exec_latency: u64,
    dcache_miss: bool,
    dtlb_miss: bool,
    merged: bool,
    config: &MachineConfig,
) -> (u64, u64, u64, u64, u64) {
    let lat = exec_latency;
    if op.is_mem() {
        let l1 = config.l1d.latency.min(lat);
        let dmiss = if merged {
            // Partial miss: the fill wait is carried by the PP edge; only
            // the DTLB penalty (if any) belongs to dmiss here.
            if dtlb_miss {
                config.tlb_miss_penalty.min(lat - l1)
            } else {
                0
            }
        } else if dcache_miss || dtlb_miss {
            lat - l1
        } else {
            0
        };
        // Merged-load residue beyond L1+TLB is enforced by the PP edge and
        // must not be double-counted; anything else left over is
        // structural and stays on the edge.
        let base = if merged { 0 } else { lat - l1 - dmiss };
        (l1, dmiss, 0, 0, base)
    } else if op.is_long_alu() {
        (0, 0, 0, lat, 0)
    } else {
        // Short integer ops, branches, nops.
        (0, 0, lat, 0, 0)
    }
}

/// Translate one instruction's observed execution into graph node data,
/// decomposing the `EP` latency into per-category components (see
/// [`GraphInst`]).
pub(crate) fn graph_inst(inst: &Inst, rec: &ExecRecord, config: &MachineConfig) -> GraphInst {
    let mut g = GraphInst {
        dd_latency: rec.icache_extra,
        mispredicted: rec.mispredicted,
        re_latency: rec.re_delay,
        pp_producer: rec.pp_producer,
        ..GraphInst::default()
    };

    let (dl1, dmiss, shalu, lgalu, base) = decompose_ep(
        inst.op,
        rec.exec_latency,
        rec.dcache_level.is_miss(),
        rec.dtlb_miss,
        rec.pp_producer.is_some(),
        config,
    );
    g.ep_dl1 = dl1;
    g.ep_dmiss = dmiss;
    g.ep_shalu = shalu;
    g.ep_lgalu = lgalu;
    g.ep_base = base;

    // PR edges with wakeup bubbles attributed to the producer's class.
    for (slot, producer) in rec.src_producers.iter().enumerate() {
        if let Some(p) = producer {
            let bubble = rec.wakeup_bubble[slot];
            g.producers[slot] = Some(ProducerEdge {
                producer: *p,
                bubble,
                bubble_class: if bubble == 0 {
                    None
                } else {
                    // The engine only charges bubbles on ALU-class
                    // producers; recover the class from the bubble origin.
                    Some(bubble_class_of(rec, *p))
                },
            });
        }
    }
    g
}

/// Which idealization class removes a producer's wakeup bubble. The engine
/// charges bubbles only for ALU-producing instructions; the class is not
/// recorded in the consumer, so the builder receives it through this hook.
/// For full-trace builds the producer's opcode is known; this fallback
/// (used only when the consumer record is examined in isolation) assumes
/// the short-ALU class, which dominates bubble-carrying producers.
fn bubble_class_of(_rec: &ExecRecord, _producer: u32) -> EventClass {
    EventClass::ShortAlu
}

/// Variant of [`DepGraph::build`] that resolves wakeup-bubble classes
/// precisely from producer opcodes (preferred; `build` delegates here for
/// full traces).
pub(crate) fn graph_inst_with_trace(
    trace: &Trace,
    i: usize,
    rec: &ExecRecord,
    config: &MachineConfig,
) -> GraphInst {
    let mut g = graph_inst(trace.inst(i), rec, config);
    for pe in g.producers.iter_mut().flatten() {
        if pe.bubble > 0 {
            let op = trace.inst(pe.producer as usize).op;
            pe.bubble_class = Some(if op.is_long_alu() {
                EventClass::LongAlu
            } else {
                EventClass::ShortAlu
            });
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_sim::{Idealization, Simulator};
    use uarch_trace::{Reg, TraceBuilder};

    fn build_for(trace: &Trace) -> (DepGraph, SimResult, MachineConfig) {
        let cfg = MachineConfig::table6();
        let result = Simulator::new(&cfg).run(trace, Idealization::none());
        let g = DepGraph::build(trace, &result, &cfg);
        (g, result, cfg)
    }

    #[test]
    fn load_miss_latency_decomposed() {
        let mut b = TraceBuilder::new();
        b.load(Reg::int(1), 0x40_0000);
        let t = b.finish();
        let (g, r, cfg) = build_for(&t);
        let gi = &g.insts()[0];
        assert_eq!(gi.ep_dl1, cfg.l1d.latency);
        assert_eq!(gi.ep_dmiss, r.records[0].exec_latency - cfg.l1d.latency);
        assert_eq!(gi.ep_total(), r.records[0].exec_latency);
    }

    #[test]
    fn load_hit_is_all_dl1() {
        let mut b = TraceBuilder::new();
        b.load(Reg::int(1), 0x40_0000);
        b.nops(200);
        b.load(Reg::int(2), 0x40_0000);
        let t = b.finish();
        let (g, _, cfg) = build_for(&t);
        let hit = g.insts().last().expect("non-empty");
        assert_eq!(hit.ep_dl1, cfg.l1d.latency);
        assert_eq!(hit.ep_dmiss, 0);
    }

    #[test]
    fn merged_load_uses_pp_edge_not_latency() {
        let mut b = TraceBuilder::new();
        b.load(Reg::int(1), 0x40_0000);
        b.load(Reg::int(2), 0x40_0010);
        let t = b.finish();
        let (g, _, cfg) = build_for(&t);
        let merged = &g.insts()[1];
        assert_eq!(merged.pp_producer, Some(0));
        // The fill wait is on the PP edge, not on EP.
        assert!(merged.ep_total() <= cfg.l1d.latency + cfg.tlb_miss_penalty);
    }

    #[test]
    fn alu_latency_classified() {
        let mut b = TraceBuilder::new();
        b.alu(Reg::int(1), &[]);
        b.op(uarch_trace::OpClass::FpDiv, Some(Reg::fp(1)), &[]);
        let t = b.finish();
        let (g, _, cfg) = build_for(&t);
        assert_eq!(g.insts()[0].ep_shalu, cfg.fu_int_alu.latency);
        assert_eq!(g.insts()[1].ep_lgalu, cfg.fp_div_latency);
    }

    #[test]
    fn producers_carried_over() {
        let mut b = TraceBuilder::new();
        let r1 = Reg::int(1);
        b.alu(r1, &[]);
        b.alu(Reg::int(2), &[r1]);
        let t = b.finish();
        let (g, _, _) = build_for(&t);
        let pe = g.insts()[1].producers[0].expect("producer edge");
        assert_eq!(pe.producer, 0);
    }

    #[test]
    fn mispredict_flag_carried() {
        let mut b = TraceBuilder::new();
        let r1 = Reg::int(1);
        b.alu(r1, &[]);
        b.branch(r1, true, 0x9000);
        b.alu(Reg::int(2), &[]);
        let t = b.finish();
        let (g, r, _) = build_for(&t);
        assert!(r.records[1].mispredicted);
        assert!(g.insts()[1].mispredicted);
    }
}
