//! Longest-path evaluation of the dependence graph under idealizations.
//!
//! Idealizing an event set `S` (paper Table 1 ↔ edge transforms):
//!
//! * `imiss` — `DD` latencies → 0
//! * `bw`    — `FBW`/`CBW` edges dropped, `RE` latencies → 0
//! * `win`   — `CD` edges dropped
//! * `bmisp` — `PD` edges dropped
//! * `dl1`   — the L1-lookup component of `EP` → 0
//! * `dmiss` — the miss component of `EP` → 0 and `PP` edges dropped
//! * `shalu` — short-ALU `EP` components and wakeup bubbles → 0
//! * `lgalu` — long-ALU `EP` components and wakeup bubbles → 0
//!
//! Because every edge points forward in (instruction, node) order, one
//! forward relaxation computes all node times, and the critical-path
//! length is the last commit time.

use crate::model::DepGraph;
use uarch_trace::{EventClass, EventSet};

/// Computed times of one instruction's five nodes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeTimes {
    /// Dispatch.
    pub d: u64,
    /// Ready.
    pub r: u64,
    /// Execute.
    pub e: u64,
    /// Complete.
    pub p: u64,
    /// Commit.
    pub c: u64,
}

impl DepGraph {
    /// Critical-path length (last commit time) with the event set `ideal`
    /// idealized. `EventSet::EMPTY` gives the baseline length.
    pub fn evaluate(&self, ideal: EventSet) -> u64 {
        self.node_times(ideal).last().map_or(0, |t| t.c)
    }

    /// Full node-time reconstruction under `ideal` (one forward pass).
    pub fn node_times(&self, ideal: EventSet) -> Vec<NodeTimes> {
        let mut times = Vec::new();
        self.node_times_into(ideal, &mut times);
        times
    }

    /// Like [`DepGraph::node_times`], but reuses `times` (cleared and
    /// refilled) so repeated queries don't reallocate.
    pub fn node_times_into(&self, ideal: EventSet, times: &mut Vec<NodeTimes>) {
        let p = &self.params;
        let n = self.insts.len();
        times.clear();
        times.reserve(n);

        let keep_imiss = !ideal.contains(EventClass::Imiss);
        let keep_bw = !ideal.contains(EventClass::Bw);
        let keep_win = !ideal.contains(EventClass::Win);
        let keep_bmisp = !ideal.contains(EventClass::Bmisp);
        let keep_dl1 = !ideal.contains(EventClass::Dl1);
        let keep_dmiss = !ideal.contains(EventClass::Dmiss);
        let keep_shalu = !ideal.contains(EventClass::ShortAlu);
        let keep_lgalu = !ideal.contains(EventClass::LongAlu);

        for i in 0..n {
            let gi = &self.insts[i];

            // D node: in-order dispatch (DD), fetch bandwidth (FBW),
            // window (CD), misprediction recovery (PD).
            let dd_lat = if keep_imiss { gi.dd_latency } else { 0 };
            let mut d = if i == 0 {
                p.front_end_depth
            } else {
                times[i - 1].d
            } + dd_lat;
            if keep_bw && i >= p.fetch_width {
                d = d.max(times[i - p.fetch_width].d + 1);
            }
            if keep_win && i >= p.rob_size {
                d = d.max(times[i - p.rob_size].c);
            }
            if keep_bmisp && i > 0 && self.insts[i - 1].mispredicted {
                // The recovery refetch path runs *through* any I-cache
                // miss of the first correct-path instruction, so the DD
                // latency rides on the PD edge as well.
                d = d.max(times[i - 1].p + p.misp_loop + dd_lat);
            }

            // R node: DR pipeline constant plus PR data dependences.
            let mut r = d + p.dispatch_to_ready;
            for pe in gi.producers.iter().flatten() {
                let bubble = match pe.bubble_class {
                    Some(EventClass::ShortAlu) if !keep_shalu => 0,
                    Some(EventClass::LongAlu) if !keep_lgalu => 0,
                    _ => pe.bubble,
                };
                r = r.max(times[pe.producer as usize].p + bubble);
            }

            // E node: RE contention.
            let e = r + if keep_bw { gi.re_latency } else { 0 };

            // P node: EP execution latency (decomposed) plus PP sharing.
            let ep = gi.ep_base
                + if keep_dl1 { gi.ep_dl1 } else { 0 }
                + if keep_dmiss { gi.ep_dmiss } else { 0 }
                + if keep_shalu { gi.ep_shalu } else { 0 }
                + if keep_lgalu { gi.ep_lgalu } else { 0 };
            let mut pt = e + ep;
            if keep_dmiss {
                if let Some(pp) = gi.pp_producer {
                    pt = pt.max(times[pp as usize].p);
                }
            }

            // C node: PC pipeline constant, in-order commit (CC), commit
            // bandwidth (CBW).
            let mut c = pt + p.complete_to_commit;
            if i > 0 {
                c = c.max(times[i - 1].c);
            }
            if keep_bw && i >= p.commit_width {
                c = c.max(times[i - p.commit_width].c + 1);
            }

            times.push(NodeTimes { d, r, e, p: pt, c });
        }
    }

    /// Run `f` over the node times under `ideal`, computed into the
    /// graph's resident scratch buffer. If another thread holds the
    /// scratch, falls back to a local allocation rather than blocking.
    pub(crate) fn with_node_times<T>(
        &self,
        ideal: EventSet,
        f: impl FnOnce(&[NodeTimes]) -> T,
    ) -> T {
        match self.times_scratch.try_lock() {
            Ok(mut guard) => {
                self.node_times_into(ideal, &mut guard);
                f(&guard)
            }
            Err(_) => f(&self.node_times(ideal)),
        }
    }

    /// The cost of idealizing `set`: baseline critical-path length minus
    /// the idealized length (paper Section 2.1, computed per Section 3 on
    /// the graph).
    pub fn cost(&self, set: EventSet) -> i64 {
        self.evaluate(EventSet::EMPTY) as i64 - self.evaluate(set) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GraphInst, GraphParams, ProducerEdge};
    use uarch_trace::MachineConfig;

    fn params() -> GraphParams {
        GraphParams::from(&MachineConfig::table6())
    }

    fn simple_inst(ep_shalu: u64) -> GraphInst {
        GraphInst {
            ep_shalu,
            ..GraphInst::default()
        }
    }

    #[test]
    fn empty_graph_is_zero() {
        let g = DepGraph::from_parts(vec![], params());
        assert_eq!(g.evaluate(EventSet::EMPTY), 0);
    }

    #[test]
    fn chain_length_matches_hand_computation() {
        // Three dependent 1-cycle ALU ops.
        let mut insts = vec![simple_inst(1)];
        for i in 1..3u32 {
            let mut gi = simple_inst(1);
            gi.producers[0] = Some(ProducerEdge {
                producer: i - 1,
                bubble: 0,
                bubble_class: None,
            });
            insts.push(gi);
        }
        let g = DepGraph::from_parts(insts, params());
        let p = params();
        let t = g.node_times(EventSet::EMPTY);
        // D all equal (fits one fetch group), R0 = D + d2r, chain adds 1
        // per link.
        assert_eq!(t[0].d, p.front_end_depth);
        assert_eq!(t[0].p, p.front_end_depth + p.dispatch_to_ready + 1);
        assert_eq!(t[2].p, t[0].p + 2);
        assert_eq!(g.evaluate(EventSet::EMPTY), t[2].p + p.complete_to_commit);
    }

    #[test]
    fn shalu_idealization_collapses_chain() {
        let mut insts = vec![simple_inst(1)];
        for i in 1..20u32 {
            let mut gi = simple_inst(1);
            gi.producers[0] = Some(ProducerEdge {
                producer: i - 1,
                bubble: 0,
                bubble_class: None,
            });
            insts.push(gi);
        }
        let g = DepGraph::from_parts(insts, params());
        let cost = g.cost(EventSet::single(EventClass::ShortAlu));
        // 20 cycles of chain latency disappear, modulo bandwidth floors.
        assert!(cost >= 10, "cost {cost}");
    }

    #[test]
    fn window_edge_binds_only_beyond_rob() {
        // rob_size + 10 independent instructions, the first very slow.
        let p = params();
        let n = p.rob_size + 10;
        let mut insts = Vec::new();
        let mut first = simple_inst(0);
        first.ep_dmiss = 500;
        insts.push(first);
        for _ in 1..n {
            insts.push(simple_inst(1));
        }
        let g = DepGraph::from_parts(insts, params());
        let t = g.node_times(EventSet::EMPTY);
        // Instruction rob_size cannot dispatch before inst 0 commits.
        assert!(t[p.rob_size].d >= t[0].c);
        // Idealizing the window removes that wait.
        let tw = g.node_times(EventSet::single(EventClass::Win));
        assert!(tw[p.rob_size].d < t[p.rob_size].d);
    }

    #[test]
    fn pd_edge_gates_post_branch_dispatch() {
        let p = params();
        let mut br = simple_inst(1);
        br.mispredicted = true;
        let insts = vec![br, simple_inst(1)];
        let g = DepGraph::from_parts(insts, params());
        let t = g.node_times(EventSet::EMPTY);
        assert_eq!(t[1].d, t[0].p + p.misp_loop);
        let tb = g.node_times(EventSet::single(EventClass::Bmisp));
        assert!(tb[1].d < t[1].d);
    }

    #[test]
    fn pp_edge_holds_completion() {
        let mut origin = simple_inst(0);
        origin.ep_dl1 = 2;
        origin.ep_dmiss = 110;
        let mut sharer = simple_inst(0);
        sharer.ep_dl1 = 2;
        sharer.pp_producer = Some(0);
        let g = DepGraph::from_parts(vec![origin, sharer], params());
        let t = g.node_times(EventSet::EMPTY);
        assert_eq!(t[1].p, t[0].p);
        // dmiss idealization releases the sharer.
        let ti = g.node_times(EventSet::single(EventClass::Dmiss));
        assert!(ti[1].p < t[1].p);
    }

    #[test]
    fn costs_are_monotone_under_union_for_latency_sets() {
        // cost(A ∪ B) >= max(cost(A), cost(B)) for idealizations that only
        // remove latency.
        let mut insts = vec![simple_inst(1)];
        let mut load = simple_inst(0);
        load.ep_dl1 = 2;
        load.ep_dmiss = 110;
        insts.push(load);
        let mut dep = simple_inst(1);
        dep.producers[0] = Some(ProducerEdge {
            producer: 1,
            bubble: 0,
            bubble_class: None,
        });
        insts.push(dep);
        let g = DepGraph::from_parts(insts, params());
        let a = EventSet::single(EventClass::Dmiss);
        let b = EventSet::single(EventClass::ShortAlu);
        let ab = a.union(b);
        assert!(g.cost(ab) >= g.cost(a).max(g.cost(b)));
    }

    #[test]
    fn fbw_edge_paces_dispatch() {
        let p = params();
        let n = 3 * p.fetch_width;
        let insts = vec![simple_inst(1); n];
        let g = DepGraph::from_parts(insts, params());
        let t = g.node_times(EventSet::EMPTY);
        assert_eq!(t[p.fetch_width].d, t[0].d + 1);
        assert_eq!(t[2 * p.fetch_width].d, t[0].d + 2);
        // bw idealization removes the pacing.
        let ti = g.node_times(EventSet::single(EventClass::Bw));
        assert_eq!(ti[2 * p.fetch_width].d, ti[0].d);
    }
}
