//! Critical-path attribution and slack analysis.
//!
//! These are the companion analyses from the same research line (Fields et
//! al., ISCA 2001/2002; Tune et al., PACT 2002) that the paper builds on:
//! *which* edges form the critical path, and how much slack each
//! instruction has before it would join it.

use crate::eval::NodeTimes;
use crate::model::{DepGraph, EdgeKind};
use uarch_trace::{EventClass, EventSet};

/// Aggregated critical-path composition: cycles and edge counts per edge
/// class, from one backward walk of the binding constraints.
///
/// Stored as fixed `[u64; 12]` arrays indexed by [`EdgeKind::index`]
/// (Table 3 order) — per-class lookups are branch-free array reads and a
/// summary is two cache lines, with no per-query map allocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CritPathSummary {
    /// Cycles of critical-path length attributed to each edge class.
    cycles: [u64; EdgeKind::ALL.len()],
    /// Number of critical edges of each class.
    counts: [u64; EdgeKind::ALL.len()],
    /// Total critical-path length (the final commit time).
    pub total: u64,
}

impl CritPathSummary {
    /// Cycles of critical-path length attributed to `kind`.
    pub fn cycles(&self, kind: EdgeKind) -> u64 {
        self.cycles[kind.index()]
    }

    /// Number of critical edges of class `kind`.
    pub fn count(&self, kind: EdgeKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total cycles attributed to edges (the critical-path length minus
    /// the pipeline-fill anchor).
    pub fn attributed(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Fraction of the critical path attributed to `kind` (0..=1).
    pub fn fraction(&self, kind: EdgeKind) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.cycles(kind) as f64 / self.total as f64
        }
    }

    /// `(kind, cycles, count)` per edge class, Table 3 order.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeKind, u64, u64)> + '_ {
        EdgeKind::ALL
            .iter()
            .map(move |&k| (k, self.cycles(k), self.count(k)))
    }
}

/// Per-instruction slack: how many cycles the instruction's execution
/// (`EP` edge) could be delayed without growing the critical path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SlackReport {
    /// Slack of each instruction's completion, in cycles.
    pub slack: Vec<u64>,
}

impl SlackReport {
    /// Instructions with zero slack (on the critical path).
    pub fn critical_count(&self) -> usize {
        self.slack.iter().filter(|s| **s == 0).count()
    }
}

/// Which node of which instruction, used while backtracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    D(usize),
    R(usize),
    E(usize),
    P(usize),
    C(usize),
}

impl DepGraph {
    /// Walk the baseline critical path backwards from the last commit,
    /// attributing each cycle to the binding edge class.
    ///
    /// Ties are broken in Table 3 order (program-order edges before data
    /// edges), matching the "last-arriving edge" convention of the prior
    /// criticality work.
    pub fn critical_path(&self, ideal: EventSet) -> CritPathSummary {
        let _sp = uarch_obs::global().span("graph", "graph.critpath");
        self.with_node_times(ideal, |times| self.critical_path_from(ideal, times))
    }

    fn critical_path_from(&self, ideal: EventSet, times: &[NodeTimes]) -> CritPathSummary {
        let mut summary = CritPathSummary::default();
        let n = self.insts.len();
        if n == 0 {
            return summary;
        }
        summary.total = times[n - 1].c;

        let keep_imiss = !ideal.contains(EventClass::Imiss);
        let keep_bw = !ideal.contains(EventClass::Bw);
        let keep_win = !ideal.contains(EventClass::Win);
        let keep_bmisp = !ideal.contains(EventClass::Bmisp);
        let keep_dl1 = !ideal.contains(EventClass::Dl1);
        let keep_dmiss = !ideal.contains(EventClass::Dmiss);
        let keep_shalu = !ideal.contains(EventClass::ShortAlu);
        let keep_lgalu = !ideal.contains(EventClass::LongAlu);
        let p = self.params;

        let mut node = Node::C(n - 1);
        // Each step moves strictly backwards in (instruction, node) order,
        // so the walk terminates.
        loop {
            let next = match node {
                Node::C(i) => {
                    let c = times[i].c;
                    // CC in-order commit.
                    if i > 0 && times[i - 1].c == c {
                        record(&mut summary, EdgeKind::CC, 0);
                        Some(Node::C(i - 1))
                    } else if keep_bw && i >= p.commit_width && times[i - p.commit_width].c + 1 == c
                    {
                        record(&mut summary, EdgeKind::CBW, 1);
                        Some(Node::C(i - p.commit_width))
                    } else {
                        record(&mut summary, EdgeKind::PC, p.complete_to_commit);
                        Some(Node::P(i))
                    }
                }
                Node::P(i) => {
                    let gi = &self.insts[i];
                    let pt = times[i].p;
                    if keep_dmiss {
                        if let Some(pp) = gi.pp_producer {
                            if times[pp as usize].p == pt {
                                record(&mut summary, EdgeKind::PP, 0);
                                node = Node::P(pp as usize);
                                continue;
                            }
                        }
                    }
                    let ep = gi.ep_base
                        + if keep_dl1 { gi.ep_dl1 } else { 0 }
                        + if keep_dmiss { gi.ep_dmiss } else { 0 }
                        + if keep_shalu { gi.ep_shalu } else { 0 }
                        + if keep_lgalu { gi.ep_lgalu } else { 0 };
                    record(&mut summary, EdgeKind::EP, ep);
                    Some(Node::E(i))
                }
                Node::E(i) => {
                    let re = if keep_bw { self.insts[i].re_latency } else { 0 };
                    record(&mut summary, EdgeKind::RE, re);
                    Some(Node::R(i))
                }
                Node::R(i) => {
                    let r = times[i].r;
                    let mut chosen = None;
                    for pe in self.insts[i].producers.iter().flatten() {
                        let bubble = match pe.bubble_class {
                            Some(EventClass::ShortAlu) if !keep_shalu => 0,
                            Some(EventClass::LongAlu) if !keep_lgalu => 0,
                            _ => pe.bubble,
                        };
                        if times[pe.producer as usize].p + bubble == r {
                            chosen = Some((pe.producer as usize, bubble));
                        }
                    }
                    if let Some((j, bubble)) = chosen {
                        record(&mut summary, EdgeKind::PR, bubble);
                        Some(Node::P(j))
                    } else {
                        record(&mut summary, EdgeKind::DR, p.dispatch_to_ready);
                        Some(Node::D(i))
                    }
                }
                Node::D(i) => {
                    let d = times[i].d;
                    if i == 0 {
                        // Anchor: pipeline-fill cycles plus any leading
                        // I-miss latency.
                        let dd0 = if keep_imiss {
                            self.insts[0].dd_latency
                        } else {
                            0
                        };
                        record(&mut summary, EdgeKind::DD, dd0);
                        None
                    } else if keep_bmisp && self.insts[i - 1].mispredicted && {
                        let dd = if keep_imiss {
                            self.insts[i].dd_latency
                        } else {
                            0
                        };
                        times[i - 1].p + p.misp_loop + dd == d
                    } {
                        let dd = if keep_imiss {
                            self.insts[i].dd_latency
                        } else {
                            0
                        };
                        record(&mut summary, EdgeKind::PD, p.misp_loop + dd);
                        Some(Node::P(i - 1))
                    } else if keep_win && i >= p.rob_size && times[i - p.rob_size].c == d {
                        record(&mut summary, EdgeKind::CD, 0);
                        Some(Node::C(i - p.rob_size))
                    } else if keep_bw && i >= p.fetch_width && times[i - p.fetch_width].d + 1 == d {
                        record(&mut summary, EdgeKind::FBW, 1);
                        Some(Node::D(i - p.fetch_width))
                    } else {
                        let dd = if keep_imiss {
                            self.insts[i].dd_latency
                        } else {
                            0
                        };
                        record(&mut summary, EdgeKind::DD, dd);
                        Some(Node::D(i - 1))
                    }
                }
            };
            match next {
                Some(nxt) => node = nxt,
                None => break,
            }
        }
        summary
    }

    /// Global slack of each instruction's completion under the baseline
    /// graph: a backward (latest-time) pass over all edges.
    pub fn slack(&self) -> SlackReport {
        self.with_node_times(EventSet::EMPTY, |times| self.slack_from(times))
    }

    fn slack_from(&self, times: &[NodeTimes]) -> SlackReport {
        let n = self.insts.len();
        if n == 0 {
            return SlackReport::default();
        }
        let horizon = times[n - 1].c;
        const INF: u64 = u64::MAX / 4;
        // Latest times per node kind.
        let mut late_d = vec![INF; n];
        let mut late_r = vec![INF; n];
        let mut late_e = vec![INF; n];
        let mut late_p = vec![INF; n];
        let mut late_c = vec![INF; n];
        late_c[n - 1] = horizon;
        let p = self.params;

        for i in (0..n).rev() {
            // C node: outgoing CC, CBW, CD edges (handled when processing
            // their targets, which are later instructions) — by the time we
            // get here, late_c[i] is final.
            let lc = late_c[i];
            // PC edge.
            late_p[i] = late_p[i].min(lc.saturating_sub(p.complete_to_commit));
            if i > 0 {
                late_c[i - 1] = late_c[i - 1].min(lc); // CC
            }
            if i >= p.commit_width {
                late_c[i - p.commit_width] = late_c[i - p.commit_width].min(lc - 1);
                // CBW
            }
            if i >= p.rob_size {
                // CD edge: C_{i-w} -> D_i.
                late_c[i - p.rob_size] = late_c[i - p.rob_size].min(late_d[i]);
            }

            // P node.
            let lp = late_p[i];
            let gi = &self.insts[i];
            late_e[i] = late_e[i].min(lp.saturating_sub(gi.ep_total()));
            if let Some(pp) = gi.pp_producer {
                late_p[pp as usize] = late_p[pp as usize].min(lp);
            }
            // PD edge out of P_i handled at target D_{i+1} below.

            // E node.
            late_r[i] = late_r[i].min(late_e[i].saturating_sub(gi.re_latency));

            // R node: PR edges back to producers.
            let lr = late_r[i];
            for pe in gi.producers.iter().flatten() {
                let j = pe.producer as usize;
                late_p[j] = late_p[j].min(lr.saturating_sub(pe.bubble));
            }
            late_d[i] = late_d[i].min(lr.saturating_sub(p.dispatch_to_ready));

            // D node: DD/FBW/PD edges back.
            let ld = late_d[i];
            if i > 0 {
                late_d[i - 1] = late_d[i - 1].min(ld.saturating_sub(gi.dd_latency));
                if self.insts[i - 1].mispredicted {
                    late_p[i - 1] =
                        late_p[i - 1].min(ld.saturating_sub(p.misp_loop + gi.dd_latency));
                }
            }
            if i >= p.fetch_width {
                late_d[i - p.fetch_width] = late_d[i - p.fetch_width].min(ld - 1);
            }
        }

        let slack = (0..n)
            .map(|i| late_p[i].saturating_sub(times[i].p).min(horizon))
            .collect();
        SlackReport { slack }
    }
}

fn record(summary: &mut CritPathSummary, kind: EdgeKind, cycles: u64) {
    summary.cycles[kind.index()] += cycles;
    summary.counts[kind.index()] += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GraphInst, GraphParams, ProducerEdge};
    use uarch_trace::MachineConfig;

    fn params() -> GraphParams {
        GraphParams::from(&MachineConfig::table6())
    }

    fn chain(n: u32, lat: u64) -> DepGraph {
        let mut insts = vec![GraphInst {
            ep_shalu: lat,
            ..GraphInst::default()
        }];
        for i in 1..n {
            insts.push(GraphInst {
                ep_shalu: lat,
                producers: [
                    Some(ProducerEdge {
                        producer: i - 1,
                        bubble: 0,
                        bubble_class: None,
                    }),
                    None,
                ],
                ..GraphInst::default()
            });
        }
        DepGraph::from_parts(insts, params())
    }

    #[test]
    fn chain_critical_path_is_mostly_ep_and_pr() {
        let g = chain(50, 1);
        let s = g.critical_path(EventSet::EMPTY);
        assert_eq!(s.total, g.evaluate(EventSet::EMPTY));
        // 50 EP edges of 1 cycle each dominate.
        assert_eq!(s.cycles(EdgeKind::EP), 50);
        assert!(s.count(EdgeKind::PR) >= 49);
        assert!(s.fraction(EdgeKind::EP) > 0.5);
    }

    #[test]
    fn attributed_cycles_sum_to_total() {
        let mut insts = vec![GraphInst {
            ep_dl1: 2,
            ep_dmiss: 110,
            ..GraphInst::default()
        }];
        insts.push(GraphInst {
            ep_shalu: 1,
            producers: [
                Some(ProducerEdge {
                    producer: 0,
                    bubble: 0,
                    bubble_class: None,
                }),
                None,
            ],
            ..GraphInst::default()
        });
        let g = DepGraph::from_parts(insts, params());
        let s = g.critical_path(EventSet::EMPTY);
        // Total = anchor (front-end depth) + attributed edge latencies.
        assert_eq!(s.attributed() + g.params().front_end_depth, s.total);
    }

    #[test]
    fn slack_zero_on_critical_chain() {
        let g = chain(20, 1);
        let s = g.slack();
        // Every link of a pure dependence chain is critical... except
        // where commit bandwidth overtakes; at least the majority must
        // have zero slack.
        assert!(s.critical_count() >= 15, "{:?}", s.slack);
    }

    #[test]
    fn parallel_short_chain_has_slack() {
        // A 200-cycle miss in parallel with one 1-cycle ALU op: the ALU op
        // has large slack.
        let insts = vec![
            GraphInst {
                ep_dmiss: 200,
                ..GraphInst::default()
            },
            GraphInst {
                ep_shalu: 1,
                ..GraphInst::default()
            },
        ];
        let g = DepGraph::from_parts(insts, params());
        let s = g.slack();
        assert_eq!(s.slack[0], 0);
        assert!(s.slack[1] >= 190, "{:?}", s.slack);
    }

    #[test]
    fn critical_path_respects_idealization() {
        let g = chain(50, 1);
        let s = g.critical_path(EventSet::single(EventClass::ShortAlu));
        assert_eq!(s.cycles(EdgeKind::EP), 0);
        assert_eq!(s.total, g.evaluate(EventSet::single(EventClass::ShortAlu)));
    }

    #[test]
    fn empty_graph_summary() {
        let g = DepGraph::from_parts(vec![], params());
        let s = g.critical_path(EventSet::EMPTY);
        assert_eq!(s.total, 0);
        assert_eq!(g.slack().slack.len(), 0);
    }
}
