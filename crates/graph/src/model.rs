//! Graph data model: per-instruction node data and machine parameters.

use uarch_trace::{EventClass, MachineConfig};

/// The five nodes each dynamic instruction contributes (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Dispatch into the instruction window.
    D,
    /// All data operands ready, waiting on a functional unit.
    R,
    /// Executing.
    E,
    /// Completed execution.
    P,
    /// Committing.
    C,
}

impl NodeKind {
    /// All node kinds in pipeline order.
    pub const ALL: [NodeKind; 5] = [
        NodeKind::D,
        NodeKind::R,
        NodeKind::E,
        NodeKind::P,
        NodeKind::C,
    ];
}

/// The twelve edge classes of the model (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeKind {
    /// In-order dispatch (`D_{i-1} → D_i`); carries I-cache/ITLB latency.
    DD,
    /// Finite fetch bandwidth (`D_{i-fbw} → D_i`, 1 cycle).
    FBW,
    /// Finite re-order buffer (`C_{i-w} → D_i`, 0 cycles).
    CD,
    /// Branch-misprediction recovery (`P_{i-1} → D_i`).
    PD,
    /// Execution follows dispatch (`D_i → R_i`, pipeline constant).
    DR,
    /// Data dependence (`P_j → R_i`); carries the wakeup bubble.
    PR,
    /// Execute after ready (`R_i → E_i`); carries contention delay.
    RE,
    /// Complete after execute (`E_i → P_i`); carries execution latency.
    EP,
    /// Cache-line sharing (`P_j → P_i`, 0 cycles) — partial misses.
    PP,
    /// Commit follows completion (`P_i → C_i`, pipeline constant).
    PC,
    /// In-order commit (`C_{i-1} → C_i`, 0 cycles).
    CC,
    /// Commit bandwidth (`C_{i-cbw} → C_i`, 1 cycle).
    CBW,
}

impl EdgeKind {
    /// All edge kinds, Table 3 order.
    pub const ALL: [EdgeKind; 12] = [
        EdgeKind::DD,
        EdgeKind::FBW,
        EdgeKind::CD,
        EdgeKind::PD,
        EdgeKind::DR,
        EdgeKind::PR,
        EdgeKind::RE,
        EdgeKind::EP,
        EdgeKind::PP,
        EdgeKind::PC,
        EdgeKind::CC,
        EdgeKind::CBW,
    ];

    /// Position of this kind in [`EdgeKind::ALL`] (Table 3 order) — the
    /// index used by the fixed-size per-class arrays in
    /// [`crate::CritPathSummary`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Table 3 name.
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::DD => "DD",
            EdgeKind::FBW => "FBW",
            EdgeKind::CD => "CD",
            EdgeKind::PD => "PD",
            EdgeKind::DR => "DR",
            EdgeKind::PR => "PR",
            EdgeKind::RE => "RE",
            EdgeKind::EP => "EP",
            EdgeKind::PP => "PP",
            EdgeKind::PC => "PC",
            EdgeKind::CC => "CC",
            EdgeKind::CBW => "CBW",
        }
    }
}

impl std::fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One source operand's `PR` edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ProducerEdge {
    /// Dynamic index of the producing instruction.
    pub producer: u32,
    /// Extra wakeup latency on the edge (the issue-wakeup bubble).
    pub bubble: u64,
    /// The class whose idealization removes the bubble (the producer's ALU
    /// class), if any.
    pub bubble_class: Option<EventClass>,
}

/// Per-instruction graph data. The `EP` latency is stored *decomposed by
/// category* so that idealizing an [`EventClass`] is a constant-time latency
/// adjustment during evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct GraphInst {
    /// `DD` latency into this instruction's `D` node (I-cache/ITLB delay;
    /// removed by `imiss`).
    pub dd_latency: u64,
    /// This instruction is a mispredicted branch: a `PD` edge runs from its
    /// `P` node to the next instruction's `D` node (removed by `bmisp`).
    pub mispredicted: bool,
    /// `RE` latency: observed issue/functional-unit contention (removed by
    /// `bw`).
    pub re_latency: u64,
    /// `EP` component attributable to the L1-data-cache lookup (removed by
    /// `dl1`).
    pub ep_dl1: u64,
    /// `EP` component attributable to data-cache/DTLB misses (removed by
    /// `dmiss`).
    pub ep_dmiss: u64,
    /// `EP` component from single-cycle integer execution (removed by
    /// `shalu`).
    pub ep_shalu: u64,
    /// `EP` component from multi-cycle int/FP execution (removed by
    /// `lgalu`).
    pub ep_lgalu: u64,
    /// `EP` component never idealized (normally zero).
    pub ep_base: u64,
    /// `PR` edges: up to two register producers.
    pub producers: [Option<ProducerEdge>; 2],
    /// `PP` edge: earlier load whose outstanding miss this one shares
    /// (removed by `dmiss`).
    pub pp_producer: Option<u32>,
}

impl GraphInst {
    /// Total `EP` latency with nothing idealized.
    pub fn ep_total(&self) -> u64 {
        self.ep_base + self.ep_dl1 + self.ep_dmiss + self.ep_shalu + self.ep_lgalu
    }
}

/// Static machine parameters the graph model needs (a snapshot of the
/// relevant [`MachineConfig`] fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GraphParams {
    /// Fetch bandwidth (`FBW` edge distance).
    pub fetch_width: usize,
    /// Commit bandwidth (`CBW` edge distance).
    pub commit_width: usize,
    /// Re-order buffer size (`CD` edge distance).
    pub rob_size: usize,
    /// Front-end depth: `D_0` anchor and part of the `PD` latency.
    pub front_end_depth: u64,
    /// `DR` edge latency.
    pub dispatch_to_ready: u64,
    /// `PC` edge latency.
    pub complete_to_commit: u64,
    /// `PD` edge latency (the misprediction loop: redirect + refill).
    pub misp_loop: u64,
}

impl From<&MachineConfig> for GraphParams {
    fn from(cfg: &MachineConfig) -> GraphParams {
        GraphParams {
            fetch_width: cfg.fetch_width,
            commit_width: cfg.commit_width,
            rob_size: cfg.rob_size,
            front_end_depth: cfg.front_end_depth,
            dispatch_to_ready: cfg.dispatch_to_ready,
            complete_to_commit: cfg.complete_to_commit,
            misp_loop: cfg.misp_loop(),
        }
    }
}

/// The dependence graph of one microexecution (or of a profiler-assembled
/// fragment).
#[derive(Debug)]
pub struct DepGraph {
    pub(crate) insts: Vec<GraphInst>,
    pub(crate) params: GraphParams,
    /// Reusable node-time buffer for `critical_path`/`slack`: those
    /// analyses re-derive the same full node-time vector per query, so the
    /// allocation is kept with the graph instead of being remade each call.
    /// A `Mutex` (not `RefCell`) so `&DepGraph` stays `Sync` and can be
    /// shared across the lane-kernel worker threads; contention falls back
    /// to a local allocation, it never blocks.
    pub(crate) times_scratch: std::sync::Mutex<Vec<crate::NodeTimes>>,
}

impl Clone for DepGraph {
    fn clone(&self) -> DepGraph {
        DepGraph {
            insts: self.insts.clone(),
            params: self.params,
            times_scratch: std::sync::Mutex::new(Vec::new()),
        }
    }
}

impl DepGraph {
    /// Assemble a graph directly from per-instruction node data. This is
    /// the entry point the shotgun profiler uses for reconstructed
    /// fragments; simulator-observed executions should prefer
    /// [`DepGraph::build`].
    ///
    /// # Panics
    /// Panics if any producer index is not strictly earlier than its
    /// consumer, or if bandwidth parameters are zero.
    pub fn from_parts(insts: Vec<GraphInst>, params: GraphParams) -> DepGraph {
        assert!(params.fetch_width > 0 && params.commit_width > 0 && params.rob_size > 0);
        for (i, gi) in insts.iter().enumerate() {
            for pe in gi.producers.iter().flatten() {
                assert!(
                    (pe.producer as usize) < i,
                    "inst {i}: producer {} not earlier",
                    pe.producer
                );
            }
            if let Some(pp) = gi.pp_producer {
                assert!((pp as usize) < i, "inst {i}: pp producer {pp} not earlier");
            }
        }
        DepGraph {
            insts,
            params,
            times_scratch: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Same instruction data under the same parameters, skipping the
    /// producer-ordering re-validation (used by the custom-idealization
    /// paths, which only ever *remove* latencies/edges).
    pub(crate) fn adjusted(&self, insts: Vec<GraphInst>) -> DepGraph {
        DepGraph {
            insts,
            params: self.params,
            times_scratch: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Number of instructions in the graph.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The machine parameters the graph was built with.
    pub fn params(&self) -> &GraphParams {
        &self.params
    }

    /// Per-instruction node data.
    pub fn insts(&self) -> &[GraphInst] {
        &self.insts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_names() {
        assert_eq!(EdgeKind::DD.name(), "DD");
        assert_eq!(EdgeKind::CBW.to_string(), "CBW");
        assert_eq!(EdgeKind::ALL.len(), 12);
    }

    #[test]
    fn ep_total_sums_components() {
        let g = GraphInst {
            ep_dl1: 2,
            ep_dmiss: 110,
            ..GraphInst::default()
        };
        assert_eq!(g.ep_total(), 112);
    }

    #[test]
    fn params_from_config() {
        let cfg = MachineConfig::table6();
        let p = GraphParams::from(&cfg);
        assert_eq!(p.rob_size, 64);
        assert_eq!(p.misp_loop, cfg.misp_loop());
    }

    #[test]
    #[should_panic(expected = "not earlier")]
    fn from_parts_rejects_forward_producer() {
        let params = GraphParams::from(&MachineConfig::table6());
        let bad = GraphInst {
            producers: [
                Some(ProducerEdge {
                    producer: 5,
                    bubble: 0,
                    bubble_class: None,
                }),
                None,
            ],
            ..GraphInst::default()
        };
        let _ = DepGraph::from_parts(vec![bad], params);
    }
}
