//! Streaming trace ingestion: incremental dependence-graph analysis
//! behind a bounded ring-buffered window.
//!
//! The batch pipeline ([`DepGraph::build`] → `eval_many`) requires the
//! whole trace up front; a live producer (generator, file tail, the
//! `POST /ingest` endpoint on `uarch-serve`) has no whole trace. The
//! [`StreamingBuilder`] accepts instructions *as they arrive*, holds at
//! most one window of not-yet-attributed instructions, and — each time
//! a full window accumulates — retires it: builds the window's
//! dependence graph, evaluates the breakdown lattice with the PR 4
//! chunked lane kernel ([`DepGraph::eval_many_chunked`], reusing one
//! [`LaneScratch`] across windows), and emits a [`WindowBreakdown`].
//! Resident memory is bounded by `window + largest push batch`
//! instructions no matter how long the stream runs.
//!
//! Fidelity contract: a retired window is analyzed exactly as a batch
//! pipeline would analyze the same instruction range in isolation —
//! same simulator over the window's sub-trace, same graph construction,
//! same lattice answers (proptest-pinned bit-identical). Dependences
//! and machine state crossing the window boundary are deliberately cut:
//! that truncation is what buys bounded memory, and it is identical on
//! both paths, so streaming answers never drift from batch answers.

use std::collections::BTreeMap;
use std::time::Instant;

use uarch_sim::{Idealization, PipelineStalls, Simulator};
use uarch_trace::{EventClass, EventSet, Inst, MachineConfig, Trace};

use crate::lanes::{LaneScratch, DEFAULT_CHUNK};
use crate::model::DepGraph;

/// Default retirement window, in instructions.
pub const DEFAULT_WINDOW: usize = 1024;

/// Default number of top pairwise interactions kept per window.
pub const DEFAULT_TOP_PAIRS: usize = 4;

/// The icost breakdown of one retired streaming window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowBreakdown {
    /// Window ordinal, dense from 0.
    pub window: u64,
    /// First stream instruction index of the window (inclusive).
    pub start: u64,
    /// Past-the-end stream instruction index.
    pub end: u64,
    /// Baseline critical-path cycles `t(∅)` of the window graph.
    pub baseline: u64,
    /// Singleton `cost(c)` per base category, in [`EventClass::ALL`]
    /// order.
    pub costs: [i64; 8],
    /// Top pairwise interaction costs by magnitude (zero interactions
    /// are omitted), largest `|icost|` first; ties break toward the
    /// lexically earlier set so the selection is deterministic.
    pub pairs: Vec<(EventSet, i64)>,
    /// Every nonzero pairwise interaction cost, same order as `pairs`
    /// but untruncated — the attribution auditor's overlap split needs
    /// all of them, not just the top few the ledger keeps.
    pub all_pairs: Vec<(EventSet, i64)>,
    /// Per-cause stall counters of the window's baseline simulation —
    /// the counter side the audit plane reconciles `costs`/`all_pairs`
    /// against.
    pub stalls: PipelineStalls,
    /// Instructions already ingested beyond `end` when this window was
    /// evaluated — how far attribution trails the ingest frontier.
    pub frontier_lag: u64,
    /// Wall time to evaluate the window lattice, in microseconds.
    pub eval_us: u64,
}

impl WindowBreakdown {
    /// The singleton costs as a name→cost map (ledger wire shape).
    pub fn costs_by_name(&self) -> BTreeMap<String, i64> {
        EventClass::ALL
            .iter()
            .zip(self.costs)
            .map(|(c, v)| (c.name().to_string(), v))
            .collect()
    }

    /// The top pair interactions as a set-display→icost map (ledger
    /// wire shape).
    pub fn pairs_by_name(&self) -> BTreeMap<String, i64> {
        self.pairs
            .iter()
            .map(|(s, v)| (s.to_string(), *v))
            .collect()
    }
}

/// Incremental dependence-graph builder over an instruction stream.
///
/// Feed instructions with [`StreamingBuilder::push`] /
/// [`StreamingBuilder::push_batch`]; each call returns the breakdowns
/// of every window that retired because of it (usually none or one —
/// more when one batch spans several windows). The stream must be a
/// connected dynamic path (`inst.next_pc` of each instruction equals
/// the `pc` of the next), checked on ingest.
#[derive(Debug)]
pub struct StreamingBuilder {
    config: MachineConfig,
    window: usize,
    chunk: usize,
    top_pairs: usize,
    /// Not-yet-retired instructions: the partial window plus whatever a
    /// push batch appended beyond it. This is the *only* stream-length
    /// state — retired windows are dropped whole.
    pending: Vec<Inst>,
    /// PC the next pushed instruction must carry (`None` at start).
    expected_pc: Option<u64>,
    /// Stream index of the first instruction in `pending`.
    retired: u64,
    next_window: u64,
    scratch: LaneScratch,
    peak_resident: usize,
}

impl StreamingBuilder {
    /// A builder retiring `window`-instruction windows under `config`.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(config: &MachineConfig, window: usize) -> StreamingBuilder {
        assert!(window > 0, "window must be at least one instruction");
        StreamingBuilder {
            config: config.clone(),
            window,
            chunk: DEFAULT_CHUNK,
            top_pairs: DEFAULT_TOP_PAIRS,
            pending: Vec::with_capacity(window),
            expected_pc: None,
            retired: 0,
            next_window: 0,
            scratch: LaneScratch::new(),
            peak_resident: 0,
        }
    }

    /// Override the lane-kernel chunk length (clamped to at least 1);
    /// any chunking yields bit-identical answers, so this is a
    /// performance/test knob only.
    pub fn with_chunk(mut self, chunk: usize) -> StreamingBuilder {
        self.chunk = chunk.max(1);
        self
    }

    /// Keep up to `k` top pairwise interactions per window (clamped to
    /// the 28 distinct pairs).
    pub fn with_top_pairs(mut self, k: usize) -> StreamingBuilder {
        self.top_pairs = k.min(28);
        self
    }

    /// The retirement window size, in instructions.
    pub fn window_size(&self) -> usize {
        self.window
    }

    /// Total instructions ingested so far.
    pub fn ingested(&self) -> u64 {
        self.retired + self.pending.len() as u64
    }

    /// Windows retired so far.
    pub fn windows_emitted(&self) -> u64 {
        self.next_window
    }

    /// Instructions currently resident (the partial window).
    pub fn resident_insts(&self) -> usize {
        self.pending.len()
    }

    /// High-water mark of resident instructions over the stream's
    /// lifetime — the bounded-memory gate `stream_scale` checks.
    pub fn peak_resident(&self) -> usize {
        self.peak_resident
    }

    /// Instructions ingested but not yet covered by a retired window.
    pub fn frontier_lag(&self) -> u64 {
        self.pending.len() as u64
    }

    /// Ingest one instruction; returns the windows it retired.
    pub fn push(&mut self, inst: Inst) -> Result<Vec<WindowBreakdown>, String> {
        self.push_batch(std::slice::from_ref(&inst))
    }

    /// Ingest a batch of instructions; returns every window the batch
    /// retired, in order. The whole batch is appended before any
    /// window retires, so each breakdown's `frontier_lag` reports how
    /// far ingest ran ahead of attribution.
    ///
    /// On a path-continuity error nothing from the offending
    /// instruction onward is ingested; the builder stays usable at its
    /// previous frontier.
    pub fn push_batch(&mut self, insts: &[Inst]) -> Result<Vec<WindowBreakdown>, String> {
        for inst in insts {
            if let Some(expected) = self.expected_pc {
                if inst.pc != expected {
                    return Err(format!(
                        "stream breaks the dynamic path at instruction {}: expected pc {:#x}, got {:#x}",
                        self.ingested(),
                        expected,
                        inst.pc
                    ));
                }
            }
            self.pending.push(*inst);
            self.expected_pc = Some(inst.next_pc);
        }
        self.peak_resident = self.peak_resident.max(self.pending.len());
        let mut out = Vec::new();
        while self.pending.len() >= self.window {
            let rest = self.pending.split_off(self.window);
            let window = std::mem::replace(&mut self.pending, rest);
            out.push(self.retire(window));
        }
        Ok(out)
    }

    /// Retire the trailing partial window, if any — the end-of-stream
    /// flush (a session close, a producer hang-up). Returns `None` when
    /// the frontier is already fully attributed.
    pub fn finish(&mut self) -> Option<WindowBreakdown> {
        if self.pending.is_empty() {
            return None;
        }
        let window = std::mem::take(&mut self.pending);
        Some(self.retire(window))
    }

    /// Evaluate one drained window exactly as a batch pipeline would
    /// analyze the same range in isolation.
    fn retire(&mut self, insts: Vec<Inst>) -> WindowBreakdown {
        let start = Instant::now();
        let n = insts.len() as u64;
        let _sp = uarch_obs::global().span_with(
            "graph",
            "graph.stream_window",
            vec![("insts", n.to_string())],
        );
        let trace = Trace::from_insts(insts);
        let result = Simulator::new(&self.config).run(&trace, Idealization::none());
        let graph = DepGraph::build(&trace, &result, &self.config);
        let (baseline, costs, all_pairs) = breakdown_lattice(&graph, self.chunk, &mut self.scratch);
        let pairs = all_pairs.iter().take(self.top_pairs).copied().collect();
        let breakdown = WindowBreakdown {
            window: self.next_window,
            start: self.retired,
            end: self.retired + n,
            baseline,
            costs,
            pairs,
            all_pairs,
            stalls: result.stalls,
            frontier_lag: self.pending.len() as u64,
            eval_us: start.elapsed().as_micros() as u64,
        };
        self.next_window += 1;
        self.retired += n;
        breakdown
    }
}

/// All 28 unordered pairs of distinct base categories, in
/// [`EventClass::ALL`] × [`EventClass::ALL`] upper-triangle order.
fn all_pairs() -> Vec<EventSet> {
    let mut pairs = Vec::with_capacity(28);
    for (i, a) in EventClass::ALL.iter().enumerate() {
        for b in &EventClass::ALL[i + 1..] {
            pairs.push(EventSet::single(*a).with(*b));
        }
    }
    pairs
}

/// Evaluate the breakdown lattice of `graph` — baseline, the 8
/// singletons, and all 28 pairs in one chunked lane pass — and reduce
/// it to `(t(∅), singleton costs, nonzero pairwise icosts)`, the pairs
/// magnitude-sorted (ties toward the lexically earlier set). Callers
/// truncate the pairs for the ledger; the attribution auditor consumes
/// the full list.
pub fn breakdown_lattice(
    graph: &DepGraph,
    chunk: usize,
    scratch: &mut LaneScratch,
) -> (u64, [i64; 8], Vec<(EventSet, i64)>) {
    let mut sets = Vec::with_capacity(1 + 8 + 28);
    sets.push(EventSet::EMPTY);
    sets.extend(EventClass::ALL.map(EventSet::single));
    let pair_sets = all_pairs();
    sets.extend_from_slice(&pair_sets);
    let times = graph.eval_many_chunked(&sets, chunk, scratch);
    let baseline = times[0];
    let cost = |t: u64| baseline as i64 - t as i64;
    let mut costs = [0i64; 8];
    for (i, t) in times[1..9].iter().enumerate() {
        costs[i] = cost(*t);
    }
    let mut pairs: Vec<(EventSet, i64)> = Vec::with_capacity(28);
    for (k, set) in pair_sets.iter().enumerate() {
        let mut members = set.iter();
        let (a, b) = (members.next().unwrap(), members.next().unwrap());
        let ai = EventClass::ALL.iter().position(|c| *c == a).unwrap();
        let bi = EventClass::ALL.iter().position(|c| *c == b).unwrap();
        let icost = cost(times[9 + k]) - costs[ai] - costs[bi];
        if icost != 0 {
            pairs.push((*set, icost));
        }
    }
    pairs.sort_by(|(s1, v1), (s2, v2)| {
        v2.abs()
            .cmp(&v1.abs())
            .then_with(|| s1.bits().cmp(&s2.bits()))
    });
    (baseline, costs, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_trace::{OpClass, Reg, TraceBuilder};

    /// A connected looped trace with loads, dependence chains, long-
    /// latency ops and predictable-plus-back-edge branches so every
    /// base category can surface.
    fn busy_trace(n: usize) -> Trace {
        let mut b = TraceBuilder::new();
        let r1 = Reg::int(1);
        let r2 = Reg::int(2);
        // 6 instructions per iteration (5 body + the loop back-edge).
        b.counted_loop(n / 6 + 1, r2, |b, k| {
            b.load(r1, 0x4000 + ((k as u64) * 64) % 16_384);
            b.alu(r2, &[r1]);
            b.op(OpClass::IntMult, Some(r1), &[r2]);
            b.store(r1, 0x9000 + ((k as u64) * 8) % 4096);
            b.load_indexed(r2, r1, 0x20_000 + ((k as u64) * 128) % 65_536);
        });
        let mut insts = b.finish().insts().to_vec();
        insts.truncate(n);
        Trace::from_insts(insts)
    }

    #[test]
    fn streaming_windows_match_isolated_batch_analysis() {
        let config = MachineConfig::table6();
        let trace = busy_trace(300);
        let mut builder = StreamingBuilder::new(&config, 64).with_chunk(17);
        let mut windows = Vec::new();
        for chunk in trace.insts().chunks(23) {
            windows.extend(builder.push_batch(chunk).expect("connected stream"));
        }
        assert_eq!(windows.len(), 300 / 64);
        for w in &windows {
            let slice = trace.insts()[w.start as usize..w.end as usize].to_vec();
            let t = Trace::from_insts(slice);
            let result = Simulator::new(&config).run(&t, Idealization::none());
            let graph = DepGraph::build(&t, &result, &config);
            assert_eq!(w.baseline, graph.evaluate(EventSet::EMPTY));
            for (i, class) in EventClass::ALL.iter().enumerate() {
                assert_eq!(
                    w.costs[i],
                    graph.cost(EventSet::single(*class)),
                    "window {} cost({})",
                    w.window,
                    class
                );
            }
            for (set, icost) in w.pairs.iter().chain(&w.all_pairs) {
                let mut it = set.iter();
                let (a, b) = (it.next().unwrap(), it.next().unwrap());
                let expect = graph.cost(*set)
                    - graph.cost(EventSet::single(a))
                    - graph.cost(EventSet::single(b));
                assert_eq!(*icost, expect, "window {} icost({})", w.window, set);
            }
            // The truncated top-k list is a prefix of the full list,
            // and the stall counters match the isolated batch sim.
            assert_eq!(w.pairs.as_slice(), &w.all_pairs[..w.pairs.len()]);
            assert!(w.all_pairs.iter().all(|(_, v)| *v != 0));
            assert_eq!(w.stalls, result.stalls, "window {}", w.window);
        }
    }

    #[test]
    fn ring_window_bounds_resident_memory_and_tracks_frontier() {
        let config = MachineConfig::table6();
        let trace = busy_trace(400);
        let mut builder = StreamingBuilder::new(&config, 32);
        for chunk in trace.insts().chunks(50) {
            builder.push_batch(chunk).expect("connected");
            assert!(builder.resident_insts() < 32 + 50);
        }
        assert!(builder.peak_resident() < 32 + 50);
        assert_eq!(builder.ingested(), 400);
        assert_eq!(builder.windows_emitted(), 400 / 32);
        // 400 = 12*32 + 16: a 16-inst partial window trails.
        assert_eq!(builder.frontier_lag(), 16);
        let tail = builder.finish().expect("partial window");
        assert_eq!((tail.start, tail.end), (384, 400));
        assert_eq!(builder.frontier_lag(), 0);
        assert!(builder.finish().is_none());
    }

    #[test]
    fn push_rejects_disconnected_paths_and_stays_usable() {
        let config = MachineConfig::table6();
        let trace = busy_trace(40);
        let mut builder = StreamingBuilder::new(&config, 16);
        builder
            .push_batch(&trace.insts()[..8])
            .expect("prefix is connected");
        let mut stray = trace.insts()[20];
        stray.pc = 0xdead_0000;
        let err = builder.push(stray).unwrap_err();
        assert!(err.contains("dynamic path"), "{err}");
        // The rejected instruction was not ingested; the stream resumes.
        assert_eq!(builder.ingested(), 8);
        builder
            .push_batch(&trace.insts()[8..])
            .expect("resume from the previous frontier");
        assert_eq!(builder.windows_emitted(), 2);
    }

    #[test]
    fn frontier_lag_reports_ingest_ahead_of_attribution() {
        let config = MachineConfig::table6();
        let trace = busy_trace(100);
        let mut builder = StreamingBuilder::new(&config, 20);
        let windows = builder.push_batch(trace.insts()).expect("connected");
        assert_eq!(windows.len(), 5);
        // The whole batch lands before any window retires, so window 0
        // sees 80 trailing instructions, window 4 sees none.
        assert_eq!(windows[0].frontier_lag, 80);
        assert_eq!(windows[4].frontier_lag, 0);
    }

    #[test]
    fn breakdown_maps_use_wire_names() {
        let config = MachineConfig::table6();
        let trace = busy_trace(64);
        let mut builder = StreamingBuilder::new(&config, 64);
        let w = builder
            .push_batch(trace.insts())
            .expect("connected")
            .remove(0);
        let costs = w.costs_by_name();
        assert_eq!(costs.len(), 8);
        assert!(costs.contains_key("dmiss") && costs.contains_key("shalu"));
        for (name, icost) in w.pairs_by_name() {
            assert!(name.contains('+'), "{name}");
            assert_ne!(icost, 0, "zero interactions are omitted");
        }
    }
}
