//! Lane-batched lattice evaluation: many event subsets per graph sweep.
//!
//! [`DepGraph::evaluate`] answers one `t(S)` query per O(n) pass, so an
//! 8-event icost breakdown walks the same instruction stream 256 times.
//! This module evaluates up to [`MAX_LANES`] subsets *simultaneously*:
//! each instruction carries W node-time lanes in flat SoA buffers, and
//! the per-class keep decisions become branch-free masked arithmetic —
//! `keep ? x : 0` is `x & mask` with `mask ∈ {0, u64::MAX}`, and a
//! conditional `max` candidate is `t.max(cand & mask)` (sound because
//! node times are non-negative, so a masked-out candidate of 0 never
//! wins). All adds are exact u64 adds and every lane performs the same
//! max comparisons as the scalar recurrence, so results are
//! **bit-identical** to [`DepGraph::evaluate`] per lane.
//!
//! Memory shape: only the `P` (completion) lane array is kept for the
//! whole stream, because `PR`/`PP` producer edges may reach arbitrarily
//! far back. The `D` and `C` histories are only ever consulted at fixed
//! window distances (`DD`/`FBW` at `i-1`/`i-fetch_width`; `CC`/`CBW`/`CD`
//! at `i-1`/`i-commit_width`/`i-rob_size`), so they live in ring buffers
//! of exactly that depth. The rings plus the trailing `P` rows form the
//! **chunk frontier**: a sweep can stop at any instruction boundary and
//! resume later (or in a different cache-blocked pass) with bit-identical
//! results — [`DepGraph::eval_many_chunked`] stitches chunks of the
//! instruction range through that frontier, keeping the per-chunk working
//! set (instruction data + lane rows) inside the cache.
//!
//! All buffers live in a reusable [`LaneScratch`], so a steady-state
//! query batch performs no per-query allocation.

use crate::model::{DepGraph, GraphParams};
use uarch_trace::{EventClass, EventSet};

/// Maximum subsets evaluated per sweep. Lane state for one instruction is
/// `3 × 8 × MAX_LANES` bytes of hot rows; 16 keeps that inside two cache
/// lines per array while amortizing the per-instruction decode 16 ways.
pub const MAX_LANES: usize = 16;

/// Default instruction-chunk length for frontier-stitched sweeps: with
/// ~104 B of `GraphInst` and `8 × MAX_LANES` B of completion lanes per
/// instruction, 2048 instructions keep a chunk's working set under
/// ~0.5 MiB — comfortably L2-resident.
pub const DEFAULT_CHUNK: usize = 2048;

/// Per-lane keep masks for the eight event classes: `u64::MAX` when the
/// class is *kept* (not idealized), `0` when idealized. Precomputed once
/// per lane outside the instruction loop.
#[derive(Debug, Clone, Copy, Default)]
struct LaneMasks {
    imiss: u64,
    bw: u64,
    win: u64,
    bmisp: u64,
    dl1: u64,
    dmiss: u64,
    shalu: u64,
    lgalu: u64,
}

impl LaneMasks {
    fn new(ideal: EventSet) -> LaneMasks {
        let keep = |c: EventClass| if ideal.contains(c) { 0 } else { u64::MAX };
        LaneMasks {
            imiss: keep(EventClass::Imiss),
            bw: keep(EventClass::Bw),
            win: keep(EventClass::Win),
            bmisp: keep(EventClass::Bmisp),
            dl1: keep(EventClass::Dl1),
            dmiss: keep(EventClass::Dmiss),
            shalu: keep(EventClass::ShortAlu),
            lgalu: keep(EventClass::LongAlu),
        }
    }
}

/// Reusable SoA buffers for lane-batched sweeps. One scratch serves any
/// number of [`DepGraph::eval_many`] calls (on any graph); buffers are
/// resized on demand and retained across calls.
#[derive(Debug, Default)]
pub struct LaneScratch {
    /// Completion-time lanes for the whole stream: `n × W`, row-major by
    /// instruction. `PR`/`PP` edges read arbitrary earlier rows.
    p_lanes: Vec<u64>,
    /// Dispatch-time ring: `fetch_width × W` (`DD` reads `i-1`, `FBW`
    /// reads `i-fetch_width`).
    d_ring: Vec<u64>,
    /// Commit-time ring: `max(rob_size, commit_width) × W` (`CC`, `CBW`,
    /// `CD` reads).
    c_ring: Vec<u64>,
}

impl LaneScratch {
    /// Fresh, empty scratch.
    pub fn new() -> LaneScratch {
        LaneScratch::default()
    }

    fn reset(&mut self, n: usize, w: usize, params: &GraphParams) {
        self.p_lanes.clear();
        self.p_lanes.resize(n * w, 0);
        self.d_ring.clear();
        self.d_ring.resize(params.fetch_width * w, 0);
        self.c_ring.clear();
        self.c_ring
            .resize(params.rob_size.max(params.commit_width) * w, 0);
    }
}

/// [`LaneMasks`] transposed to struct-of-arrays: the inner lane loops
/// load each class's masks as one contiguous `[u64; W]` vector instead of
/// gathering a 64-byte-strided field out of an array of structs — the
/// difference between the autovectorizer emitting packed loads and
/// scalarizing the whole recurrence.
struct MaskSoA<const W: usize> {
    imiss: [u64; W],
    bw: [u64; W],
    win: [u64; W],
    bmisp: [u64; W],
    dl1: [u64; W],
    dmiss: [u64; W],
    shalu: [u64; W],
    lgalu: [u64; W],
}

impl<const W: usize> MaskSoA<W> {
    fn new(masks: &[LaneMasks; W]) -> MaskSoA<W> {
        let mut m = MaskSoA {
            imiss: [0; W],
            bw: [0; W],
            win: [0; W],
            bmisp: [0; W],
            dl1: [0; W],
            dmiss: [0; W],
            shalu: [0; W],
            lgalu: [0; W],
        };
        for (l, mask) in masks.iter().enumerate() {
            m.imiss[l] = mask.imiss;
            m.bw[l] = mask.bw;
            m.win[l] = mask.win;
            m.bmisp[l] = mask.bmisp;
            m.dl1[l] = mask.dl1;
            m.dmiss[l] = mask.dmiss;
            m.shalu[l] = mask.shalu;
            m.lgalu[l] = mask.lgalu;
        }
        m
    }
}

/// Advance a ring slot: equivalent to `(s + 1) % len` without the integer
/// division the hot loop would otherwise pay once per window edge per
/// instruction.
#[inline]
fn bump(s: usize, len: usize) -> usize {
    let s = s + 1;
    if s == len {
        0
    } else {
        s
    }
}

/// One frontier-stitched pass over `insts[lo..hi)` with `W` lanes.
///
/// On entry the rings and `p_lanes[..lo*W]` hold the state left by the
/// sweep of `[0, lo)`; on exit they hold the state of `[0, hi)`. Rows are
/// written only after every read of the same ring slot, so window reads
/// at distance exactly `fetch_width`/`rob_size`/`commit_width` see the
/// not-yet-overwritten old value.
fn sweep_chunk<const W: usize>(
    graph: &DepGraph,
    masks: &[LaneMasks; W],
    scratch: &mut LaneScratch,
    lo: usize,
    hi: usize,
) {
    let insts = graph.insts.as_slice();
    let p = &graph.params;
    let fw = p.fetch_width;
    let cw = p.commit_width;
    let rob = p.rob_size;
    let rc = rob.max(cw);
    let m = MaskSoA::<W>::new(masks);
    let row = |buf: &[u64], slot: usize| -> [u64; W] { buf[slot * W..][..W].try_into().unwrap() };

    // Ring cursors, advanced instead of recomputed: one `%` each at chunk
    // entry, zero integer divisions inside the loop.
    let mut sd = lo % fw; // d_ring slot of instruction i (DD prev at i−1, FBW old at i−fw)
    let mut sc = lo % rc; // c_ring slot of instruction i (CC prev at i−1)
    let mut s_cd = if lo >= rob { (lo - rob) % rc } else { 0 }; // CD read: (i−rob) % rc
    let mut s_cbw = if lo >= cw { (lo - cw) % rc } else { 0 }; // CBW read: (i−cw) % rc

    for i in lo..hi {
        let gi = &insts[i];

        // D node: DD (in-order dispatch, I-miss latency), FBW, CD, PD.
        let prev_d: [u64; W] = if i == 0 {
            [p.front_end_depth; W]
        } else {
            let prev = if sd == 0 { fw - 1 } else { sd - 1 };
            row(&scratch.d_ring, prev)
        };
        let mut d = [0u64; W];
        for l in 0..W {
            d[l] = prev_d[l] + (gi.dd_latency & m.imiss[l]);
        }
        if i >= fw {
            // Slot sd still holds d[i - fw].
            let old = row(&scratch.d_ring, sd);
            for l in 0..W {
                d[l] = d[l].max((old[l] + 1) & m.bw[l]);
            }
        }
        if i >= rob {
            let old = row(&scratch.c_ring, s_cd);
            s_cd = bump(s_cd, rc);
            for l in 0..W {
                d[l] = d[l].max(old[l] & m.win[l]);
            }
        }
        if i > 0 && insts[i - 1].mispredicted {
            // The recovery refetch runs through any I-miss of the first
            // correct-path instruction (same as the scalar path).
            let pp: [u64; W] = row(&scratch.p_lanes, i - 1);
            for l in 0..W {
                d[l] = d[l].max((pp[l] + p.misp_loop + (gi.dd_latency & m.imiss[l])) & m.bmisp[l]);
            }
        }
        scratch.d_ring[sd * W..][..W].copy_from_slice(&d);
        sd = bump(sd, fw);

        // R node: DR constant plus PR data dependences (bubble dropped
        // when the producer's ALU class is idealized).
        let mut r = [0u64; W];
        for l in 0..W {
            r[l] = d[l] + p.dispatch_to_ready;
        }
        for pe in gi.producers.iter().flatten() {
            let prod: [u64; W] = row(&scratch.p_lanes, pe.producer as usize);
            match pe.bubble_class {
                Some(EventClass::ShortAlu) => {
                    for l in 0..W {
                        r[l] = r[l].max(prod[l] + (pe.bubble & m.shalu[l]));
                    }
                }
                Some(EventClass::LongAlu) => {
                    for l in 0..W {
                        r[l] = r[l].max(prod[l] + (pe.bubble & m.lgalu[l]));
                    }
                }
                _ => {
                    for l in 0..W {
                        r[l] = r[l].max(prod[l] + pe.bubble);
                    }
                }
            }
        }

        // E node (RE contention) and P node (decomposed EP plus PP
        // sharing), fused: E is never read downstream.
        let mut pt = [0u64; W];
        for l in 0..W {
            let e = r[l] + (gi.re_latency & m.bw[l]);
            let ep = gi.ep_base
                + (gi.ep_dl1 & m.dl1[l])
                + (gi.ep_dmiss & m.dmiss[l])
                + (gi.ep_shalu & m.shalu[l])
                + (gi.ep_lgalu & m.lgalu[l]);
            pt[l] = e + ep;
        }
        if let Some(pp) = gi.pp_producer {
            let prod: [u64; W] = row(&scratch.p_lanes, pp as usize);
            for l in 0..W {
                pt[l] = pt[l].max(prod[l] & m.dmiss[l]);
            }
        }
        scratch.p_lanes[i * W..][..W].copy_from_slice(&pt);

        // C node: PC constant, CC in-order, CBW pacing.
        let mut c = [0u64; W];
        for l in 0..W {
            c[l] = pt[l] + p.complete_to_commit;
        }
        if i > 0 {
            let prev = if sc == 0 { rc - 1 } else { sc - 1 };
            let old = row(&scratch.c_ring, prev);
            for l in 0..W {
                c[l] = c[l].max(old[l]);
            }
        }
        if i >= cw {
            let old = row(&scratch.c_ring, s_cbw);
            s_cbw = bump(s_cbw, rc);
            for l in 0..W {
                c[l] = c[l].max((old[l] + 1) & m.bw[l]);
            }
        }
        scratch.c_ring[sc * W..][..W].copy_from_slice(&c);
        sc = bump(sc, rc);
    }
}

/// Sweep a whole group of ≤ `W` subsets (masks padded to `W`) and return
/// the final commit time of each lane.
fn eval_group<const W: usize>(
    graph: &DepGraph,
    masks: &[LaneMasks; W],
    chunk: usize,
    scratch: &mut LaneScratch,
) -> [u64; W] {
    let n = graph.insts.len();
    if n == 0 {
        return [0; W];
    }
    scratch.reset(n, W, &graph.params);
    let chunk = chunk.max(1);
    let mut lo = 0;
    while lo < n {
        let hi = (lo + chunk).min(n);
        sweep_chunk::<W>(graph, masks, scratch, lo, hi);
        lo = hi;
    }
    let rc = graph.params.rob_size.max(graph.params.commit_width);
    scratch.c_ring[((n - 1) % rc) * W..][..W]
        .try_into()
        .unwrap()
}

/// Dispatch one group (≤ [`MAX_LANES`] subsets) at the narrowest
/// monomorphized lane width that fits, padding spare lanes with the last
/// subset (their outputs are discarded).
fn eval_group_dyn(
    graph: &DepGraph,
    sets: &[EventSet],
    chunk: usize,
    scratch: &mut LaneScratch,
    out: &mut Vec<u64>,
) {
    debug_assert!(!sets.is_empty() && sets.len() <= MAX_LANES);
    let g = sets.len();
    let width = g.next_power_of_two();
    let mut masks = [LaneMasks::default(); MAX_LANES];
    for (l, m) in masks.iter_mut().enumerate().take(width) {
        *m = LaneMasks::new(sets[l.min(g - 1)]);
    }
    let finals: &[u64] = &match width {
        1 => eval_group::<1>(graph, masks[..1].try_into().unwrap(), chunk, scratch).to_vec(),
        2 => eval_group::<2>(graph, masks[..2].try_into().unwrap(), chunk, scratch).to_vec(),
        4 => eval_group::<4>(graph, masks[..4].try_into().unwrap(), chunk, scratch).to_vec(),
        8 => eval_group::<8>(graph, masks[..8].try_into().unwrap(), chunk, scratch).to_vec(),
        _ => eval_group::<16>(graph, &masks, chunk, scratch).to_vec(),
    };
    out.extend_from_slice(&finals[..g]);
}

impl DepGraph {
    /// Critical-path length under each subset in `sets`, batched
    /// [`MAX_LANES`] lanes per instruction sweep. Bit-identical to calling
    /// [`DepGraph::evaluate`] per set, in `ceil(len/MAX_LANES)` passes
    /// instead of `len`.
    pub fn eval_many(&self, sets: &[EventSet]) -> Vec<u64> {
        let mut scratch = LaneScratch::new();
        self.eval_many_with(sets, &mut scratch)
    }

    /// [`DepGraph::eval_many`] with a caller-held [`LaneScratch`], so
    /// repeated batches reuse the lane buffers.
    pub fn eval_many_with(&self, sets: &[EventSet], scratch: &mut LaneScratch) -> Vec<u64> {
        self.eval_many_chunked(sets, DEFAULT_CHUNK, scratch)
    }

    /// [`DepGraph::eval_many`] with an explicit instruction-chunk length:
    /// each sweep advances `chunk` instructions at a time, carrying the
    /// D/P/C frontier (dispatch/commit rings + completion lanes) across
    /// the boundary so `DD`/`FBW`/`CD`/`CC`/`CBW` window edges straddling
    /// a chunk edge resolve exactly as in an unchunked pass.
    pub fn eval_many_chunked(
        &self,
        sets: &[EventSet],
        chunk: usize,
        scratch: &mut LaneScratch,
    ) -> Vec<u64> {
        if sets.is_empty() {
            return Vec::new();
        }
        let _sp = uarch_obs::global().span_with(
            "graph",
            "graph.eval_many",
            vec![("sets", sets.len().to_string())],
        );
        let mut out = Vec::with_capacity(sets.len());
        for group in sets.chunks(MAX_LANES) {
            eval_group_dyn(self, group, chunk, scratch, &mut out);
        }
        out
    }

    /// Batched [`DepGraph::cost`]: one extra baseline lane, then
    /// `cost(S) = t(∅) − t(S)` per set.
    pub fn cost_many(&self, sets: &[EventSet]) -> Vec<i64> {
        let base = self.evaluate(EventSet::EMPTY) as i64;
        self.eval_many(sets)
            .into_iter()
            .map(|t| base - t as i64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GraphInst, GraphParams, ProducerEdge};
    use uarch_trace::MachineConfig;

    fn params() -> GraphParams {
        GraphParams::from(&MachineConfig::table6())
    }

    /// A graph exercising every edge class: a mispredicted branch, loads
    /// with shared misses, ALU chains with bubbles, enough length to arm
    /// the FBW/CD/CBW window edges.
    fn busy_graph(n: usize) -> DepGraph {
        let mut insts = Vec::with_capacity(n);
        for i in 0..n as u32 {
            let mut gi = GraphInst {
                ep_shalu: 1,
                ..GraphInst::default()
            };
            match i % 7 {
                0 => {
                    gi.ep_shalu = 0;
                    gi.ep_dl1 = 2;
                    gi.ep_dmiss = if i % 14 == 0 { 110 } else { 0 };
                    if i >= 14 && i % 14 == 7 {
                        gi.pp_producer = Some(i - 7);
                    }
                }
                1 => gi.mispredicted = true,
                2 => gi.dd_latency = 12,
                3 => {
                    gi.ep_shalu = 0;
                    gi.ep_lgalu = 7;
                    gi.re_latency = 2;
                }
                _ => {}
            }
            if i > 0 {
                gi.producers[0] = Some(ProducerEdge {
                    producer: i - 1,
                    bubble: 1,
                    bubble_class: Some(uarch_trace::EventClass::ShortAlu),
                });
            }
            if i > 3 {
                gi.producers[1] = Some(ProducerEdge {
                    producer: i - 4,
                    bubble: 2,
                    bubble_class: Some(uarch_trace::EventClass::LongAlu),
                });
            }
            insts.push(gi);
        }
        DepGraph::from_parts(insts, params())
    }

    fn all_subsets() -> Vec<EventSet> {
        (0u16..256).map(|b| EventSet::from_bits(b as u8)).collect()
    }

    #[test]
    fn matches_scalar_on_full_lattice() {
        let g = busy_graph(300);
        let sets = all_subsets();
        let batched = g.eval_many(&sets);
        for (s, b) in sets.iter().zip(&batched) {
            assert_eq!(*b, g.evaluate(*s), "set {s}");
        }
    }

    #[test]
    fn every_lane_width_is_exact() {
        let g = busy_graph(150);
        let sets = all_subsets();
        for width in 1..=MAX_LANES {
            let batch: Vec<EventSet> = sets.iter().copied().take(width).collect();
            let got = g.eval_many(&batch);
            let want: Vec<u64> = batch.iter().map(|&s| g.evaluate(s)).collect();
            assert_eq!(got, want, "width {width}");
        }
    }

    #[test]
    fn chunk_boundaries_cross_window_edges() {
        let g = busy_graph(200);
        let sets = all_subsets();
        let want: Vec<u64> = sets.iter().map(|&s| g.evaluate(s)).collect();
        let mut scratch = LaneScratch::new();
        // Chunk lengths around 1, the fetch/commit widths, the ROB size,
        // and non-divisors of the stream length.
        for chunk in [1usize, 2, 3, 4, 7, 63, 64, 65, 100, 199, 200, 1000] {
            let got = g.eval_many_chunked(&sets, chunk, &mut scratch);
            assert_eq!(got, want, "chunk {chunk}");
        }
    }

    #[test]
    fn empty_graph_and_empty_batch() {
        let g = DepGraph::from_parts(vec![], params());
        assert_eq!(g.eval_many(&all_subsets()), vec![0u64; 256]);
        let g2 = busy_graph(10);
        assert!(g2.eval_many(&[]).is_empty());
    }

    #[test]
    fn cost_many_matches_cost() {
        let g = busy_graph(120);
        let sets = all_subsets();
        let costs = g.cost_many(&sets);
        for (s, c) in sets.iter().zip(&costs) {
            assert_eq!(*c, g.cost(*s), "set {s}");
        }
    }

    #[test]
    fn scratch_is_reusable_across_graphs() {
        let mut scratch = LaneScratch::new();
        for n in [5usize, 80, 33] {
            let g = busy_graph(n);
            let sets = [EventSet::EMPTY, EventSet::ALL];
            let got = g.eval_many_with(&sets, &mut scratch);
            assert_eq!(got[0], g.evaluate(EventSet::EMPTY));
            assert_eq!(got[1], g.evaluate(EventSet::ALL));
        }
    }
}
