//! Custom, per-instruction idealizations.
//!
//! The paper's cost framework is not limited to the eight machine-level
//! categories: "how events are grouped into a set depends on the
//! application of the analysis — a software prefetching optimization
//! might consider the set of events consisting of all cache misses from a
//! single static load" (Section 1). This module lets callers idealize any
//! predicate over instructions, which is how per-static-load and
//! per-instruction costs are measured.

use crate::eval::NodeTimes;
use crate::model::{DepGraph, GraphInst};
use uarch_trace::EventSet;

/// What to idealize about one instruction in a custom evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstIdealization {
    /// Zero the `dmiss` component of `EP` and drop the `PP` edge
    /// (idealize this instruction's cache misses to hits — Table 1 row 1,
    /// per instruction).
    pub ideal_misses: bool,
    /// Zero the *entire* `EP` latency (idealize the operation itself —
    /// Table 1 row 2, per instruction).
    pub ideal_latency: bool,
    /// Drop this instruction's `PD` recovery edge (idealize this branch's
    /// misprediction).
    pub ideal_mispredict: bool,
}

impl InstIdealization {
    /// Idealize nothing about this instruction.
    pub const NONE: InstIdealization = InstIdealization {
        ideal_misses: false,
        ideal_latency: false,
        ideal_mispredict: false,
    };

    /// Idealize this instruction's cache misses.
    pub const MISSES: InstIdealization = InstIdealization {
        ideal_misses: true,
        ideal_latency: false,
        ideal_mispredict: false,
    };

    /// Idealize this instruction's execution latency entirely.
    pub const LATENCY: InstIdealization = InstIdealization {
        ideal_misses: true,
        ideal_latency: true,
        ideal_mispredict: false,
    };

    /// Idealize this branch's misprediction.
    pub const MISPREDICT: InstIdealization = InstIdealization {
        ideal_misses: false,
        ideal_latency: false,
        ideal_mispredict: true,
    };

    fn is_none(self) -> bool {
        self == Self::NONE
    }
}

impl DepGraph {
    /// Critical-path length with a *per-instruction* idealization chosen
    /// by `pick` (called once per instruction), layered on top of the
    /// class-level idealization `ideal` (pass [`EventSet::EMPTY`] for
    /// none).
    ///
    /// `cost = evaluate(ideal) − evaluate_custom(ideal, pick)` gives the
    /// cost of exactly the chosen events.
    pub fn evaluate_custom(
        &self,
        ideal: EventSet,
        mut pick: impl FnMut(usize, &GraphInst) -> InstIdealization,
    ) -> u64 {
        // Fast path: reuse the shared evaluator when nothing custom is
        // requested.
        let mut any = false;
        let adjusted: Vec<GraphInst> = self
            .insts
            .iter()
            .enumerate()
            .map(|(i, gi)| {
                let what = pick(i, gi);
                if what.is_none() {
                    return *gi;
                }
                any = true;
                let mut g = *gi;
                if what.ideal_misses {
                    g.ep_dmiss = 0;
                    g.pp_producer = None;
                }
                if what.ideal_latency {
                    g.ep_dl1 = 0;
                    g.ep_dmiss = 0;
                    g.ep_shalu = 0;
                    g.ep_lgalu = 0;
                    g.ep_base = 0;
                    g.pp_producer = None;
                }
                if what.ideal_mispredict {
                    g.mispredicted = false;
                }
                g
            })
            .collect();
        if !any {
            return self.evaluate(ideal);
        }
        self.adjusted(adjusted).evaluate(ideal)
    }

    /// Cost (cycles saved) of idealizing the instructions selected by
    /// `pick`, with nothing else idealized.
    pub fn cost_custom(&self, pick: impl FnMut(usize, &GraphInst) -> InstIdealization) -> i64 {
        self.evaluate(EventSet::EMPTY) as i64 - self.evaluate_custom(EventSet::EMPTY, pick) as i64
    }

    /// The cost of each instruction in `targets`, measured *individually*
    /// with [`InstIdealization::LATENCY`] — the per-instruction cost
    /// metric of Tune et al. that the paper builds on. Returns one cost
    /// per target. O(n) per target.
    pub fn instruction_costs(&self, targets: &[usize]) -> Vec<i64> {
        targets
            .iter()
            .map(|&t| {
                self.cost_custom(|i, _| {
                    if i == t {
                        InstIdealization::LATENCY
                    } else {
                        InstIdealization::NONE
                    }
                })
            })
            .collect()
    }

    /// Node times under a custom idealization (for inspection/debugging).
    pub fn node_times_custom(
        &self,
        ideal: EventSet,
        mut pick: impl FnMut(usize, &GraphInst) -> InstIdealization,
    ) -> Vec<NodeTimes> {
        let adjusted: Vec<GraphInst> = self
            .insts
            .iter()
            .enumerate()
            .map(|(i, gi)| {
                let what = pick(i, gi);
                let mut g = *gi;
                if what.ideal_misses {
                    g.ep_dmiss = 0;
                    g.pp_producer = None;
                }
                if what.ideal_latency {
                    g.ep_dl1 = 0;
                    g.ep_dmiss = 0;
                    g.ep_shalu = 0;
                    g.ep_lgalu = 0;
                    g.ep_base = 0;
                    g.pp_producer = None;
                }
                if what.ideal_mispredict {
                    g.mispredicted = false;
                }
                g
            })
            .collect();
        self.adjusted(adjusted).node_times(ideal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GraphParams;
    use uarch_trace::MachineConfig;

    fn params() -> GraphParams {
        GraphParams::from(&MachineConfig::table6())
    }

    fn miss_inst(lat: u64) -> GraphInst {
        GraphInst {
            ep_dl1: 2,
            ep_dmiss: lat,
            ..GraphInst::default()
        }
    }

    #[test]
    fn idealizing_the_only_miss_recovers_its_latency() {
        let insts = vec![miss_inst(100)];
        let g = DepGraph::from_parts(insts, params());
        let cost = g.cost_custom(|i, _| {
            if i == 0 {
                InstIdealization::MISSES
            } else {
                InstIdealization::NONE
            }
        });
        assert_eq!(cost, 100);
    }

    #[test]
    fn parallel_misses_have_zero_individual_but_large_joint_cost() {
        // The paper's motivating example, at instruction granularity.
        let insts = vec![miss_inst(100), miss_inst(100)];
        let g = DepGraph::from_parts(insts, params());
        let one = |t: usize| {
            g.cost_custom(|i, _| {
                if i == t {
                    InstIdealization::MISSES
                } else {
                    InstIdealization::NONE
                }
            })
        };
        let both = g.cost_custom(|_, _| InstIdealization::MISSES);
        assert_eq!(one(0), 0, "parallel miss #0 is individually free");
        assert_eq!(one(1), 0, "parallel miss #1 is individually free");
        assert!(both >= 100, "jointly they carry the time: {both}");
        // Negative? No — this is the canonical *parallel* interaction:
        // icost = both - one - one = both > 0.
    }

    #[test]
    fn instruction_costs_match_manual_queries() {
        let insts = vec![miss_inst(50), GraphInst::default(), miss_inst(80)];
        let g = DepGraph::from_parts(insts, params());
        let costs = g.instruction_costs(&[0, 2]);
        assert_eq!(costs.len(), 2);
        for c in &costs {
            assert!(*c >= 0);
        }
    }

    #[test]
    fn mispredict_idealization_removes_pd_edge() {
        let mut br = GraphInst {
            ep_shalu: 1,
            ..GraphInst::default()
        };
        br.mispredicted = true;
        let g = DepGraph::from_parts(vec![br, GraphInst::default()], params());
        let cost = g.cost_custom(|i, _| {
            if i == 0 {
                InstIdealization::MISPREDICT
            } else {
                InstIdealization::NONE
            }
        });
        assert!(cost > 0, "removing the recovery must save cycles: {cost}");
    }

    #[test]
    fn no_selection_is_free_and_fast_path() {
        let g = DepGraph::from_parts(vec![miss_inst(10)], params());
        assert_eq!(g.cost_custom(|_, _| InstIdealization::NONE), 0);
        assert_eq!(
            g.evaluate_custom(EventSet::EMPTY, |_, _| InstIdealization::NONE),
            g.evaluate(EventSet::EMPTY)
        );
    }
}
