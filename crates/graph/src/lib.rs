//! Microexecution dependence-graph model of an out-of-order processor
//! (MICRO-36 2003, Tables 2 and 3, Figure 2).
//!
//! Each dynamic instruction contributes five nodes — `D` (dispatch into
//! window), `R` (ready), `E` (execute), `P` (completed execution), `C`
//! (commit) — connected by twelve classes of latency-labelled dependence
//! edges:
//!
//! | edge | constraint | latency source |
//! |---|---|---|
//! | `DD`  | in-order dispatch            | I-cache/ITLB misses (dynamic) |
//! | `FBW` | finite fetch bandwidth       | 1 cycle |
//! | `CD`  | finite re-order buffer       | 0 |
//! | `PD`  | branch misprediction recovery| misprediction loop (static) |
//! | `DR`  | execution follows dispatch   | pipeline (static) |
//! | `PR`  | data dependences             | wakeup bubble (dynamic) |
//! | `RE`  | execute after ready          | contention (dynamic) |
//! | `EP`  | complete after execute       | execution latency (dynamic) |
//! | `PP`  | cache-line sharing           | 0 |
//! | `PC`  | commit follows completion    | pipeline (static) |
//! | `CC`  | in-order commit              | 0 |
//! | `CBW` | commit bandwidth             | 1 cycle |
//!
//! The paper's central trick (Section 3) is to measure the **cost** of an
//! event set by *idealizing edges* — zeroing or removing the latencies the
//! set is responsible for — and re-measuring the critical-path length,
//! instead of re-running the simulator. All edges point forward in
//! (instruction, node) order, so evaluation is a single O(n) relaxation
//! pass ([`DepGraph::evaluate`]).
//!
//! # Example
//!
//! ```
//! use uarch_graph::DepGraph;
//! use uarch_sim::{Simulator, Idealization};
//! use uarch_trace::{MachineConfig, TraceBuilder, Reg, EventClass, EventSet};
//!
//! let mut b = TraceBuilder::new();
//! let r1 = Reg::int(1);
//! b.load(r1, 0x4000);
//! b.alu(Reg::int(2), &[r1]);
//! let trace = b.finish();
//!
//! let config = MachineConfig::table6();
//! let result = Simulator::new(&config).run(&trace, Idealization::none());
//! let graph = DepGraph::build(&trace, &result, &config);
//!
//! let base = graph.evaluate(EventSet::EMPTY);
//! let nodmiss = graph.evaluate(EventSet::single(EventClass::Dmiss));
//! assert!(nodmiss <= base);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod build;
mod critpath;
mod custom;
mod eval;
mod lanes;
mod model;
mod stream;

pub use build::decompose_ep;
pub use critpath::{CritPathSummary, SlackReport};
pub use custom::InstIdealization;
pub use eval::NodeTimes;
pub use lanes::{LaneScratch, DEFAULT_CHUNK, MAX_LANES};
pub use model::{DepGraph, EdgeKind, GraphInst, GraphParams, NodeKind, ProducerEdge};
pub use stream::{
    breakdown_lattice, StreamingBuilder, WindowBreakdown, DEFAULT_TOP_PAIRS, DEFAULT_WINDOW,
};
