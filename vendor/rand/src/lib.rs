//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access, so the
//! real `rand` cannot be fetched from a registry. This crate implements the
//! exact API surface the workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`RngExt`] sampling methods —
//! on top of a xoshiro256** generator seeded via SplitMix64 (the same
//! seeding scheme the reference implementations recommend).
//!
//! The streams differ numerically from upstream `rand`, which is fine for
//! this workspace: all consumers are synthetic-workload generators and
//! samplers that rely only on statistical shape, never on exact values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard seedable generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A range that knows how to sample a uniform value from a generator.
pub trait SampleRange<T> {
    /// Draw one value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A type that can be drawn uniformly from a generator (`rng.random()`).
pub trait Random {
    /// Draw one value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Random for u64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Sampling conveniences on any [`RngCore`], mirroring rand 0.10's `Rng`.
pub trait RngExt: RngCore {
    /// Uniform value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::random_from(self) < p
    }

    /// Uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random_range(0u64..1 << 40), b.random_range(0u64..1 << 40));
        }
        let mut c = StdRng::seed_from_u64(8);
        let equal = (0..64).all(|_| a.random::<u64>() == c.random::<u64>());
        assert!(!equal, "different seeds must diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.random_range(0u8..=255);
            let _ = w; // full-range inclusive must not panic or wrap
            let x = r.random_range(1usize..=3);
            assert!((1..=3).contains(&x));
        }
    }

    #[test]
    fn random_bool_matches_probability_roughly() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((1800..3200).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v: f64 = r.random();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
