//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This crate provides the same entry points the
//! workspace's benches use — [`Criterion::bench_function`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`criterion_group!`],
//! [`criterion_main!`], [`black_box`] — backed by a simple wall-clock
//! sampler: it warms up briefly, times `sample_size` samples, and prints
//! min/median/mean per iteration. No statistics beyond that, no HTML
//! reports, no baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; all variants behave identically
/// here (setup is always excluded from timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh setup per iteration.
    PerIteration,
}

/// The benchmark harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Time `f` and print a one-line summary.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Times the closure handed to [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` for `sample_size` samples (after one warmup call).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warmup
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` over inputs built by `setup`; setup time excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warmup
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let n = self.samples.len();
        let min = self.samples[0];
        let median = self.samples[n / 2];
        let mean = self.samples.iter().sum::<Duration>() / n as u32;
        println!(
            "{name:<40} min {:>12} median {:>12} mean {:>12} ({n} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Group benchmark functions, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        c.bench_function("batched", |b| {
            b.iter_batched(
                || 21u64,
                |x| {
                    calls += 1;
                    x * 2
                },
                BatchSize::SmallInput,
            )
        });
        assert_eq!(calls, 4); // warmup + 3 samples
    }
}
