//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate implements the subset of its API that the
//! workspace's property tests use: the [`Strategy`] abstraction with
//! `prop_map`/`prop_flat_map`, range / tuple / `Vec` / collection / option
//! strategies, `any::<T>()`, the [`proptest!`] macro with optional
//! `#![proptest_config(..)]`, and the `prop_assert*` macros.
//!
//! Semantics: each test runs `cases` times with a deterministic RNG seeded
//! from the test name and case index, so failures are reproducible run to
//! run. There is no shrinking — a failing case reports its case number,
//! seed, and assertion message and panics immediately.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub mod arbitrary;
pub mod collection;
pub mod option;

/// The conventional glob-import surface: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Module-style access to the strategy factories (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Run `cases` deterministic property-test cases. This is the engine behind
/// the [`proptest!`] macro; each case calls `body` with a fresh RNG.
pub fn run_cases(
    test_name: &str,
    config: &test_runner::ProptestConfig,
    mut body: impl FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
) {
    for case in 0..config.cases {
        let seed = test_runner::case_seed(test_name, case);
        let mut rng = test_runner::TestRng::from_seed(seed);
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest: {test_name} failed at case {case}/{} (seed {seed:#018x}): {e}",
                config.cases
            );
        }
    }
}

/// The `proptest!` block macro: wraps `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &config, |__rng| {
                let ($($arg,)*) = ($( $crate::strategy::Strategy::generate(&($strat), __rng), )*);
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

/// Assert inside a proptest body, failing the case (not panicking directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}
