//! `Option` strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Option<T>`: `None` one time in four, like upstream's
/// default weighting.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `Some` from `inner` three times in four, otherwise `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
