//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values drawn from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
