//! Deterministic test-case RNG and configuration.

use std::fmt;

/// Per-test configuration; only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single test case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed assertion with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic seed for one case of one named test.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The per-case random source handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build from a 64-bit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
