//! The [`Strategy`] abstraction: a recipe for generating random values.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply draws a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, build a dependent strategy from it, and draw from
    /// that.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Each element of a `Vec` of strategies generates the matching element of
/// the output `Vec` (heterogeneously-seeded uniform collections).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
