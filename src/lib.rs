//! Umbrella crate for the interaction-cost reproduction: see the
//! workspace README. Re-exports nothing; examples and integration tests
//! live here.
