//! Shotgun-profiler integrity: reconstruction round-trips, consistency
//! checking, and failure injection (corrupted samples must be detected,
//! not silently analyzed).

use shotgun::{collect_samples, reconstruct, ReconstructError, SamplerConfig, SigBits};
use uarch_sim::{Idealization, Simulator};
use uarch_trace::{EventSet, MachineConfig, Reg, StaticProgram, TraceBuilder};
use uarch_workloads::{generate, BenchProfile};

fn loop_workload(n: usize) -> (uarch_trace::Trace, StaticProgram) {
    let mut b = TraceBuilder::new();
    b.counted_loop(n, Reg::int(9), |b, k| {
        b.load(Reg::int(1), 0x1000_0000 + (k as u64 % 512) * 8);
        b.alu(Reg::int(2), &[Reg::int(1)]);
        b.alu(Reg::int(3), &[Reg::int(2)]);
        b.store(Reg::int(3), 0x1800_0000 + (k as u64 % 64) * 8);
    });
    let t = b.finish();
    let p = StaticProgram::from_trace(&t);
    (t, p)
}

#[test]
fn reconstruction_roundtrips_a_simple_loop() {
    let (t, p) = loop_workload(800);
    let cfg = MachineConfig::table6();
    let result = Simulator::new(&cfg).run(&t, Idealization::none());
    let samples = collect_samples(&t, &result, &SamplerConfig::default());
    assert!(!samples.signatures.is_empty());
    let frag = reconstruct(&samples.signatures[0], &samples.details, &p, &cfg)
        .expect("simple loop reconstructs");
    assert_eq!(frag.graph.len(), samples.signatures[0].bits.len());
    assert!(frag.stats.match_rate() > 0.2);
    // The fragment must evaluate to a plausible per-instruction time.
    let cycles = frag.graph.evaluate(EventSet::EMPTY);
    let cpi = cycles as f64 / frag.graph.len() as f64;
    assert!((0.1..20.0).contains(&cpi), "fragment CPI {cpi}");
}

#[test]
fn reconstruction_recovers_register_dependences() {
    let (t, p) = loop_workload(600);
    let cfg = MachineConfig::table6();
    let result = Simulator::new(&cfg).run(&t, Idealization::none());
    let samples = collect_samples(&t, &result, &SamplerConfig::default());
    let frag =
        reconstruct(&samples.signatures[0], &samples.details, &p, &cfg).expect("reconstructs");
    // The loop body is ld -> alu -> alu; at least a third of fragment
    // instructions must carry a producer edge.
    let with_deps = frag
        .graph
        .insts()
        .iter()
        .filter(|g| g.producers.iter().any(Option::is_some))
        .count();
    assert!(
        with_deps * 3 >= frag.graph.len(),
        "{with_deps} of {} have producers",
        frag.graph.len()
    );
}

#[test]
fn corrupted_signature_bits_are_detected() {
    let (t, p) = loop_workload(800);
    let cfg = MachineConfig::table6();
    let result = Simulator::new(&cfg).run(&t, Idealization::none());
    let samples = collect_samples(&t, &result, &SamplerConfig::default());
    let mut sig = samples.signatures[0].clone();
    // Flip bit 1 on at an early position that is a plain ALU op: an
    // impossible setting (bit 1 requires load/store/taken branch).
    let mut corrupted_at = None;
    for i in 0..sig.bits.len().min(64) {
        if !sig.bits[i].b1 {
            // Find a position whose static op is an ALU (the loop body
            // alternates ld, alu, alu, st, backedge).
            sig.bits[i] = SigBits {
                b1: true,
                b2: sig.bits[i].b2,
            };
            corrupted_at = Some(i);
            break;
        }
    }
    let at = corrupted_at.expect("found a position to corrupt");
    match reconstruct(&sig, &samples.details, &p, &cfg) {
        Err(ReconstructError::Inconsistent { at: e }) => {
            assert!(e <= at + 1, "detected at {e}, corrupted at {at}")
        }
        Err(other) => panic!("wrong error kind: {other}"),
        Ok(f) => {
            // Salvage may legitimately truncate before the corruption;
            // then the fragment must not extend past it.
            assert!(
                f.stats.truncated && f.graph.len() <= at,
                "corruption at {at} survived into a {}-inst fragment",
                f.graph.len()
            );
        }
    }
}

#[test]
fn unknown_start_pc_is_rejected() {
    let (t, p) = loop_workload(400);
    let cfg = MachineConfig::table6();
    let result = Simulator::new(&cfg).run(&t, Idealization::none());
    let samples = collect_samples(&t, &result, &SamplerConfig::default());
    let mut sig = samples.signatures[0].clone();
    sig.start_pc = 0xdead_0000;
    match reconstruct(&sig, &samples.details, &p, &cfg) {
        Err(ReconstructError::UnknownPc { at, .. }) => assert_eq!(at, 0),
        other => panic!("expected UnknownPc, got {other:?}"),
    }
}

#[test]
fn taken_branch_directions_follow_signature_bit_one() {
    // A loop whose back-edge is taken (n-1) times: the reconstruction must
    // follow the loop body repeatedly, which only works if bit 1 routes
    // the walk back to the head.
    let (t, p) = loop_workload(500);
    let cfg = MachineConfig::table6();
    let result = Simulator::new(&cfg).run(&t, Idealization::none());
    let samples = collect_samples(&t, &result, &SamplerConfig::default());
    let frag =
        reconstruct(&samples.signatures[0], &samples.details, &p, &cfg).expect("reconstructs");
    // Loop body is 6 instructions (4 body + counter + backedge); a
    // correctly-followed fragment of length L covers about L/6 iterations,
    // so PCs repeat. Count distinct PCs via the static program: must be
    // the static loop size, far below fragment length.
    assert!(frag.graph.len() > 100);
    assert!(p.len() <= 8, "static loop is tiny: {}", p.len());
}

#[test]
fn profiler_handles_every_suite_benchmark() {
    let cfg = MachineConfig::table6();
    // Denser sampling than the default: with only a couple of signatures
    // per 10k-instruction trace, whether an indirect-jump target happens
    // to be covered by a detailed sample is a seed lottery. This test is
    // about the reconstruction machinery, not sampling luck.
    let sampler = SamplerConfig {
        signature_interval: 1500,
        detail_interval: 13,
        ..SamplerConfig::default()
    };
    for profile in BenchProfile::suite() {
        let w = generate(profile, 10_000, 13);
        let result = Simulator::new(&cfg).run_warmed(
            &w.trace,
            Idealization::none(),
            &w.warm_data,
            &w.warm_code,
        );
        let samples = collect_samples(&w.trace, &result, &sampler);
        let mut ok = 0;
        for sig in &samples.signatures {
            if reconstruct(sig, &samples.details, &w.program, &cfg).is_ok() {
                ok += 1;
            }
        }
        assert!(
            ok > 0,
            "{}: no fragment of {} skeletons reconstructed",
            profile.name,
            samples.signatures.len()
        );
    }
}
