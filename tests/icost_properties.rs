//! Property-based tests of the interaction-cost algebra and the
//! dependence-graph evaluator, over randomly generated graphs and traces.

use proptest::prelude::*;

use icost::{icost, CostOracle, GraphOracle};
use uarch_graph::{DepGraph, GraphInst, GraphParams, ProducerEdge};
use uarch_sim::{Idealization, Simulator};
use uarch_trace::{EventClass, EventSet, MachineConfig, OpClass, Reg, Trace, TraceBuilder};

/// Random per-instruction graph node data.
fn arb_graph_inst(idx: u32) -> impl Strategy<Value = GraphInst> {
    (
        0u64..3,       // dd latency
        any::<bool>(), // mispredicted
        0u64..4,       // re latency
        0u64..5,       // ep_dl1
        0u64..120,     // ep_dmiss
        0u64..3,       // ep_shalu
        0u64..13,      // ep_lgalu
        proptest::option::of(0..idx.max(1)),
        proptest::option::of(0..idx.max(1)),
    )
        .prop_map(move |(dd, misp, re, dl1, dmiss, shalu, lgalu, p0, p1)| {
            let mk = |p: Option<u32>| {
                p.filter(|_| idx > 0).map(|producer| ProducerEdge {
                    producer,
                    bubble: 0,
                    bubble_class: None,
                })
            };
            GraphInst {
                dd_latency: dd,
                mispredicted: misp,
                re_latency: re,
                ep_dl1: dl1,
                ep_dmiss: dmiss,
                ep_shalu: shalu,
                ep_lgalu: lgalu,
                ep_base: 0,
                producers: [mk(p0), mk(p1)],
                pp_producer: None,
            }
        })
}

fn arb_graph() -> impl Strategy<Value = DepGraph> {
    prop::collection::vec(0u32..1, 1..60).prop_flat_map(|v| {
        let n = v.len() as u32;
        (0..n)
            .map(arb_graph_inst)
            .collect::<Vec<_>>()
            .prop_map(move |insts| {
                DepGraph::from_parts(insts, GraphParams::from(&MachineConfig::table6()))
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The accounting identity (Section 2.2): the sum of the interaction
    /// costs of every non-empty subset of U equals cost(U) — exactly.
    #[test]
    fn icosts_sum_to_aggregate_cost(graph in arb_graph()) {
        let mut oracle = GraphOracle::new(&graph);
        let u = EventSet::from([
            EventClass::Dl1,
            EventClass::Dmiss,
            EventClass::Bmisp,
            EventClass::Win,
        ]);
        let total: i64 = u
            .subsets()
            .filter(|s| !s.is_empty())
            .map(|s| icost(&mut oracle, s))
            .sum();
        prop_assert_eq!(total, oracle.cost(u));
    }

    /// Graph costs are non-negative (removing latency cannot lengthen the
    /// longest path) and monotone under set inclusion.
    #[test]
    fn costs_nonnegative_and_monotone(graph in arb_graph()) {
        let mut oracle = GraphOracle::new(&graph);
        for c in EventClass::ALL {
            let single = oracle.cost(EventSet::single(c));
            prop_assert!(single >= 0, "cost({c}) = {single}");
            prop_assert!(oracle.cost(EventSet::ALL) >= single);
        }
    }

    /// Pairwise icost computed by the generic Möbius form agrees with the
    /// textbook formula.
    #[test]
    fn pair_icost_matches_formula(graph in arb_graph()) {
        let mut oracle = GraphOracle::new(&graph);
        let a = EventSet::single(EventClass::Dmiss);
        let b = EventSet::single(EventClass::Bmisp);
        let by_def = oracle.cost(a.union(b)) - oracle.cost(a) - oracle.cost(b);
        prop_assert_eq!(icost(&mut oracle, a.union(b)), by_def);
    }

    /// Node times are monotone within an instruction (D <= R <= E <= P <=
    /// C) and dispatch/commit are monotone across instructions, under any
    /// idealization.
    #[test]
    fn node_times_well_ordered(graph in arb_graph(), bits in 0u8..=255) {
        let ideal: EventSet = EventClass::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| bits & (1 << i) != 0)
            .map(|(_, c)| *c)
            .collect();
        let times = graph.node_times(ideal);
        let mut prev_d = 0;
        let mut prev_c = 0;
        for t in &times {
            prop_assert!(t.d <= t.r && t.r <= t.e && t.e <= t.p && t.p <= t.c);
            prop_assert!(t.d >= prev_d);
            prop_assert!(t.c >= prev_c);
            prev_d = t.d;
            prev_c = t.c;
        }
    }

    /// The critical-path walk attributes exactly the baseline length
    /// (anchor + edges).
    #[test]
    fn critical_path_accounts_for_total(graph in arb_graph()) {
        let s = graph.critical_path(EventSet::EMPTY);
        prop_assert_eq!(
            s.attributed() + graph.params().front_end_depth,
            s.total
        );
    }
}

/// A random but *valid* dynamic trace: straight-line code with arbitrary
/// op/operand choices.
fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u8..7, 0u8..20, 0u8..20, 0u64..1 << 18), 1..120).prop_map(|ops| {
        let mut b = TraceBuilder::new();
        for (kind, dst_n, src_n, addr) in ops {
            let dst = Reg::int(dst_n + 1);
            let src = Reg::int(src_n + 1);
            match kind {
                0 | 1 => {
                    b.alu(dst, &[src]);
                }
                2 => {
                    b.load(dst, 0x1000_0000 + addr * 8);
                }
                3 => {
                    b.store(src, 0x1800_0000 + addr * 8);
                }
                4 => {
                    b.op(OpClass::IntMult, Some(dst), &[src]);
                }
                5 => {
                    b.op(OpClass::FpDiv, Some(Reg::fp(dst_n % 20)), &[]);
                }
                _ => {
                    b.nops(1);
                }
            }
        }
        b.finish()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Simulator invariants hold on arbitrary valid traces, and the graph
    /// built from the run reproduces the simulator's critical path within
    /// a tight bound.
    #[test]
    fn simulator_and_graph_agree_on_random_traces(trace in arb_trace()) {
        let cfg = MachineConfig::table6();
        let result = Simulator::new(&cfg).run(&trace, Idealization::none());
        prop_assert!(result.check_invariants(&trace).is_ok());
        let graph = DepGraph::build(&trace, &result, &cfg);
        let gbase = graph.evaluate(EventSet::EMPTY);
        let sim = result.cycles as f64;
        prop_assert!(
            (gbase as f64 - sim).abs() / sim < 0.10,
            "graph {} vs sim {}",
            gbase,
            result.cycles
        );
    }

    /// Idealizing everything is at least as fast as idealizing anything.
    #[test]
    fn full_idealization_dominates(trace in arb_trace(), bits in 0u8..=255) {
        let cfg = MachineConfig::table6();
        let sim = Simulator::new(&cfg);
        let ideal: EventSet = EventClass::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| bits & (1 << i) != 0)
            .map(|(_, c)| *c)
            .collect();
        let some = sim.cycles(&trace, Idealization::from(ideal));
        let all = sim.cycles(&trace, Idealization::all());
        prop_assert!(all <= some, "all {} vs {} {}", all, ideal, some);
    }
}
