//! End-to-end integration: workload generation → simulation → dependence
//! graph → interaction-cost analysis → shotgun profiling, across crates.

use icost::{icost, Breakdown, CostOracle, GraphOracle, Interaction, MultiSimOracle};
use shotgun::{collect_samples, ProfilerOracle, SamplerConfig};
use uarch_graph::DepGraph;
use uarch_sim::{Idealization, Simulator};
use uarch_trace::{EventClass, EventSet, MachineConfig};
use uarch_workloads::{generate, parallel_misses, serial_misses_parallel_alu, BenchProfile};

fn observe(w: &uarch_workloads::Workload, cfg: &MachineConfig) -> (uarch_sim::SimResult, DepGraph) {
    let r =
        Simulator::new(cfg).run_warmed(&w.trace, Idealization::none(), &w.warm_data, &w.warm_code);
    let g = DepGraph::build(&w.trace, &r, cfg);
    (r, g)
}

#[test]
fn whole_pipeline_runs_for_every_benchmark() {
    let cfg = MachineConfig::table6();
    for p in BenchProfile::suite() {
        let w = generate(p, 8_000, 5);
        let (r, g) = observe(&w, &cfg);
        r.check_invariants(&w.trace)
            .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        let mut oracle = GraphOracle::new(&g);
        let b = Breakdown::with_focus(&mut oracle, &EventClass::ALL, EventClass::Dl1);
        assert_eq!(b.rows.len(), 17, "{}", p.name);
        assert!(b.total_cycles > 0, "{}", p.name);
    }
}

#[test]
fn graph_baseline_matches_simulator_closely() {
    let cfg = MachineConfig::table6();
    for name in ["gcc", "vortex", "mcf", "gzip"] {
        let w = generate(BenchProfile::by_name(name).expect("known"), 20_000, 7);
        let (r, g) = observe(&w, &cfg);
        let gbase = g.evaluate(EventSet::EMPTY);
        let err = (gbase as f64 - r.cycles as f64).abs() / r.cycles as f64;
        assert!(
            err < 0.05,
            "{name}: graph {gbase} vs sim {} ({:.1}% off)",
            r.cycles,
            100.0 * err
        );
    }
}

#[test]
fn graph_costs_track_multisim_costs() {
    let cfg = MachineConfig::table6();
    let w = generate(BenchProfile::by_name("twolf").expect("known"), 15_000, 3);
    // Unwarmed on both sides so the oracles see the same machine state.
    let trace = &w.trace;
    let result = Simulator::new(&cfg).run(trace, Idealization::none());
    let graph = DepGraph::build(trace, &result, &cfg);
    let mut go = GraphOracle::new(&graph);
    let mut mo = MultiSimOracle::new(&cfg, trace);
    for c in [EventClass::Dmiss, EventClass::Bmisp, EventClass::Win] {
        let s = EventSet::single(c);
        let (gp, mp) = (go.cost_percent(s), mo.cost_percent(s));
        assert!(
            (gp - mp).abs() < 6.0,
            "{c}: graph {gp:.1}% vs multisim {mp:.1}%"
        );
    }
}

#[test]
fn canonical_kernels_show_expected_interactions() {
    let cfg = MachineConfig::table6();

    // Parallel misses: dmiss cost dominated by overlap.
    let t = parallel_misses(150);
    let r = Simulator::new(&cfg).run(&t, Idealization::none());
    let g = DepGraph::build(&t, &r, &cfg);
    let mut o = GraphOracle::new(&g);
    assert!(o.cost(EventSet::single(EventClass::Dmiss)) > 0);

    // Serial kernel: negative dmiss×shalu interaction, agreed by both
    // oracles.
    let t = serial_misses_parallel_alu(60, 110);
    let r = Simulator::new(&cfg).run(&t, Idealization::none());
    let g = DepGraph::build(&t, &r, &cfg);
    let mut graph_oracle = GraphOracle::new(&g);
    let mut sim_oracle = MultiSimOracle::new(&cfg, &t);
    let pair = EventSet::from([EventClass::Dmiss, EventClass::ShortAlu]);
    let gi = icost(&mut graph_oracle, pair);
    let si = icost(&mut sim_oracle, pair);
    assert_eq!(
        Interaction::classify(gi, 20),
        Interaction::Serial,
        "graph {gi}"
    );
    assert_eq!(
        Interaction::classify(si, 20),
        Interaction::Serial,
        "sim {si}"
    );
}

#[test]
fn profiler_matches_fullgraph_on_dominant_category() {
    let cfg = MachineConfig::table6();
    let w = generate(BenchProfile::by_name("mcf").expect("known"), 25_000, 9);
    let (r, g) = observe(&w, &cfg);
    let samples = collect_samples(&w.trace, &r, &SamplerConfig::default());
    let mut prof = ProfilerOracle::new(&samples, &w.program, &cfg, 12, 3);
    let mut full = GraphOracle::new(&g);
    let dmiss = EventSet::single(EventClass::Dmiss);
    let (pp, fp) = (prof.cost_percent(dmiss), full.cost_percent(dmiss));
    assert!(
        (pp - fp).abs() < 15.0,
        "profiler {pp:.1}% vs fullgraph {fp:.1}%"
    );
    assert!(pp > 40.0, "mcf must remain dmiss-dominated: {pp:.1}%");
}

#[test]
fn breakdown_other_balances_to_total() {
    let cfg = MachineConfig::table6();
    let w = generate(BenchProfile::by_name("gap").expect("known"), 10_000, 2);
    let (_, g) = observe(&w, &cfg);
    let mut oracle = GraphOracle::new(&g);
    let b = Breakdown::with_focus(&mut oracle, &EventClass::ALL, EventClass::Dl1);
    let shown: f64 = b
        .rows
        .iter()
        .filter(|r| r.label != "Total")
        .map(|r| r.percent)
        .sum();
    assert!((shown - 100.0).abs() < 1e-6, "rows sum to {shown}");
}

#[test]
fn warmup_reduces_cold_start_misses() {
    let cfg = MachineConfig::table6();
    let w = generate(BenchProfile::by_name("crafty").expect("known"), 10_000, 4);
    let sim = Simulator::new(&cfg);
    let cold = sim.run(&w.trace, Idealization::none());
    let warm = sim.run_warmed(&w.trace, Idealization::none(), &w.warm_data, &w.warm_code);
    assert!(warm.cycles < cold.cycles);
    assert!(warm.counts.l1i_misses < cold.counts.l1i_misses);
    assert!(warm.counts.l1d_load_misses < cold.counts.l1d_load_misses);
}

#[test]
fn loop_knobs_change_performance_in_the_right_direction() {
    let w = generate(BenchProfile::by_name("gzip").expect("known"), 10_000, 6);
    let run = |cfg: &MachineConfig| {
        Simulator::new(cfg).cycles_warmed(
            &w.trace,
            Idealization::none(),
            &w.warm_data,
            &w.warm_code,
        )
    };
    let base = run(&MachineConfig::table6());
    assert!(run(&MachineConfig::table6().with_dl1_latency(4)) > base);
    assert!(run(&MachineConfig::table6().with_issue_wakeup(2)) > base);
    assert!(run(&MachineConfig::table6().with_misp_loop(15)) > base);
    assert!(run(&MachineConfig::table6().with_window(128)) <= base);
}
