//! End-to-end trace contract: running an analysis through the runner with
//! the global tracer enabled yields a valid Chrome trace-event document
//! whose spans are balanced per thread and properly nested.
//!
//! This lives in its own integration-test binary because [`install_global`]
//! claims the process-wide tracer: the first instrumented call in the
//! process freezes it.

use uarch_obs::{install_global, Tracer};
use uarch_runner::{Query, Runner};
use uarch_trace::{EventClass, EventSet, MachineConfig, Reg, TraceBuilder};

fn kernel() -> uarch_trace::Trace {
    let mut b = TraceBuilder::new();
    for k in 0..40u64 {
        b.load(Reg::int(1), 0x10_0000 + k * 4096);
        b.alu(Reg::int(2), &[Reg::int(1)]);
    }
    b.finish()
}

#[test]
fn runner_trace_is_valid_balanced_and_nested() {
    let tracer = Tracer::enabled();
    assert!(
        install_global(tracer.clone()),
        "this test must own the global tracer (run in its own process)"
    );

    let cfg = MachineConfig::table6();
    let t = kernel();
    let d = EventSet::single(EventClass::Dmiss);
    let w = EventSet::single(EventClass::Win);
    let runner = Runner::new().with_threads(2);
    let (_, report) = runner.run(&cfg, &t, &[Query::Icost(d.union(w))]);
    assert_eq!(report.sims_run, 4, "the 2x2 lattice simulates 4 sets");

    // 1. The export is a valid Chrome trace-event JSON document.
    let json = tracer.export_json();
    let doc = uarch_obs::json::parse(&json).expect("export parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for ev in events {
        for field in ["name", "ph", "ts", "pid", "tid"] {
            assert!(ev.get(field).is_some(), "event missing {field}: {ev:?}");
        }
    }

    // 2. Begin/end events form a balanced stack on every thread, with
    //    matching names (RAII guards make any imbalance a bug).
    let recorded = tracer.events();
    let mut stacks: std::collections::HashMap<u64, Vec<&str>> = Default::default();
    for ev in &recorded {
        let stack = stacks.entry(ev.tid).or_default();
        match ev.phase {
            'B' => stack.push(ev.name.as_ref()),
            'E' => {
                let open = stack.pop().unwrap_or_else(|| {
                    panic!("E '{}' on tid {} with no open span", ev.name, ev.tid)
                });
                assert_eq!(open, ev.name.as_ref(), "mismatched E on tid {}", ev.tid);
            }
            _ => {}
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "tid {tid} left spans open: {stack:?}");
    }

    // 3. The parallel wave nests inside the run span: when its B event is
    //    recorded, "runner.run" is an open ancestor on the same thread.
    let mut saw_wave = false;
    let mut open: std::collections::HashMap<u64, Vec<&str>> = Default::default();
    for ev in &recorded {
        let stack = open.entry(ev.tid).or_default();
        match ev.phase {
            'B' => {
                if ev.name == "wave" {
                    saw_wave = true;
                    assert!(
                        stack.contains(&"runner.run"),
                        "wave began outside runner.run: open = {stack:?}"
                    );
                }
                stack.push(ev.name.as_ref());
            }
            'E' => {
                stack.pop();
            }
            _ => {}
        }
    }
    assert!(saw_wave, "the run recorded no wave span");

    // The simulation spans are there too (on worker threads or inline).
    assert!(recorded.iter().any(|e| e.name == "sim" && e.phase == 'B'));
    assert!(recorded
        .iter()
        .any(|e| e.name == "worker" || e.name == "job"));
}
